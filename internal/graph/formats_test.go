package graph

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 2 0.5
2 3 1.0
3 1 2.5
`
	edges, n, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d, want 3/3", n, len(edges))
	}
	if edges[0] != (Edge{0, 1}) {
		t.Errorf("first edge = %v, want 0->1 (0-indexed)", edges[0])
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
2 2 1
2 1
`
	edges, n, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(edges) != 2 {
		t.Fatalf("n=%d edges=%d, want 2/2 (mirrored)", n, len(edges))
	}
	g := BuildDirected(n, edges)
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Errorf("symmetric entry not mirrored")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	bad := []string{
		"",
		"not a header\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2 4\n",
		"%%MatrixMarket matrix coordinate real general\n",
		"%%MatrixMarket matrix coordinate real general\nx y z\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
	}
	for _, in := range bad {
		if _, _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("accepted bad input %q", in)
		}
	}
}

func TestReadMETIS(t *testing.T) {
	// Triangle plus a pendant: 4 vertices, 4 undirected edges, METIS lists
	// each edge from both sides.
	in := `% comment
4 4
2 3
1 3 4
1 2
2
`
	edges, n, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	g := BuildUndirected(n, edges)
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(0, 2) {
		t.Errorf("adjacency wrong")
	}
}

func TestReadMETISErrors(t *testing.T) {
	bad := []string{
		"",
		"2\n",             // header too short
		"2 1 011\n1\n2\n", // weighted format
		"2 1\n5\n1\n",     // neighbor out of range
		"3 2\n2\n1\n",     // fewer adjacency lines than promised
		"2 1\nbogus\n1\n", // non-numeric neighbor
	}
	for _, in := range bad {
		if _, _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("accepted bad input %q", in)
		}
	}
}

func TestMaybeGunzip(t *testing.T) {
	plain := "0 1\n1 2\n"
	r, err := MaybeGunzip(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	edges, _, err := ReadEdgeList(r)
	if err != nil || len(edges) != 2 {
		t.Fatalf("plain passthrough failed: %v, %d edges", err, len(edges))
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(plain)); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	r, err = MaybeGunzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	edges, _, err = ReadEdgeList(r)
	if err != nil || len(edges) != 2 {
		t.Fatalf("gzip path failed: %v, %d edges", err, len(edges))
	}

	// Tiny non-gzip input must pass through, not error.
	r, err = MaybeGunzip(strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := r.Read(b); err != nil || b[0] != 'x' {
		t.Errorf("short passthrough failed")
	}
}

package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"unsafe"

	"aquila/internal/parallel"
)

// This file implements the .aqg v2 binary graph container: a versioned,
// page-aligned, mmap-able CSR snapshot that loads with zero parse and zero
// rebuild work. Unlike the legacy v1 format (WriteBinary/ReadBinary), which
// stored only the out-CSR and forced every loader to reconstruct the rest, a
// v2 container persists everything a graph carries — the in-CSR for directed
// graphs, the mate/eid indexes for undirected ones — so LoadContainer can
// alias the graph's slices directly onto the file mapping after a bounded
// validation pass.
//
// Layout (all fixed-width fields little-endian):
//
//	[0,8)      magic "AQG2\x1aCSR"
//	[8,12)     version uint32 (== 2)
//	[12,16)    flags uint32 (bit 0: undirected)
//	[16,24)    n int64 — vertex count
//	[24,32)    slots int64 — adjacency length (arcs if directed, 2·edges if undirected)
//	[32,40)    edges int64 — undirected edge count (== slots for directed graphs)
//	[40,48)    reserved, zero
//	[48,112)   section table: 4 × {byte offset int64, byte length int64}
//	[112,4096) zero padding — the header occupies one 4 KiB page, so the
//	           first section starts page-aligned under mmap
//	[4096,…)   sections, each starting 8-byte aligned, in table order
//
// Directed sections:   0 out-offsets ((n+1)×8), 1 out-adjacency (slots×4),
//	                    2 in-offsets ((n+1)×8),  3 in-adjacency (slots×4).
// Undirected sections: 0 offsets ((n+1)×8), 1 adjacency (slots×4),
//	                    2 mate slots (slots×8), 3 edge ids (slots×8).
//
// The section table is redundant with the canonical layout (sections abut,
// modulo 8-byte alignment pad) and is validated against it; it exists so
// future versions can add sections without breaking old readers' bounds
// checks.

const (
	aqgMagic      = "AQG2\x1aCSR"
	aqgVersion    = 2
	aqgHeaderSize = 4096
	aqgSections   = 4

	aqgFlagUndirected = 1 << 0
)

// hostLittleEndian reports whether this machine stores integers in the
// container's on-disk byte order, which is what lets the mmap path alias
// typed slices onto the raw mapping. Big-endian hosts take the streaming
// decoder instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Container is a graph loaded from an .aqg container together with the
// resource backing its slices. Exactly one of Directed/Undirected is non-nil.
// When the container was mmap'd, the graph's CSR slices alias the mapping:
// call Release once the graph is no longer referenced (e.g. on daemon
// shutdown) to unmap it. Using the graph after Release is a use-after-free.
type Container struct {
	Directed   *Directed
	Undirected *Undirected
	mapping    []byte
}

// Mapped reports whether the container's slices alias an mmap'd file (true)
// or live on the Go heap via the streaming reader (false).
func (c *Container) Mapped() bool { return c.mapping != nil }

// Release unmaps the file backing the container's slices, if any, and drops
// the graph pointers. The graphs obtained from this container must not be
// used afterwards. Release is idempotent; heap-backed containers release
// trivially.
func (c *Container) Release() error {
	var err error
	if c.mapping != nil {
		err = munmapFile(c.mapping)
		c.mapping = nil
	}
	c.Directed, c.Undirected = nil, nil
	return err
}

// aqgSection is one section-table entry: a byte extent within the file.
type aqgSection struct {
	off, size int64
}

// aqgHeader is the parsed fixed header of a v2 container.
type aqgHeader struct {
	flags uint32
	n     int64 // vertices
	slots int64 // adjacency slots
	edges int64 // undirected edges (== slots when directed)
	sec   [aqgSections]aqgSection
}

func (h *aqgHeader) undirected() bool { return h.flags&aqgFlagUndirected != 0 }

// sectionSizes returns the exact byte length of every section implied by the
// graph shape, in table order.
func (h *aqgHeader) sectionSizes() [aqgSections]int64 {
	if h.undirected() {
		return [aqgSections]int64{8 * (h.n + 1), 4 * h.slots, 8 * h.slots, 8 * h.slots}
	}
	return [aqgSections]int64{8 * (h.n + 1), 4 * h.slots, 8 * (h.n + 1), 4 * h.slots}
}

// layout assigns the canonical section offsets: sections in table order,
// starting at the first page boundary, each aligned to 8 bytes.
func (h *aqgHeader) layout() {
	sizes := h.sectionSizes()
	pos := int64(aqgHeaderSize)
	for i, sz := range sizes {
		h.sec[i] = aqgSection{off: pos, size: sz}
		pos = align8(pos + sz)
	}
}

// payloadEnd is the byte offset one past the last section.
func (h *aqgHeader) payloadEnd() int64 {
	last := h.sec[aqgSections-1]
	return last.off + last.size
}

func align8(x int64) int64 { return (x + 7) &^ 7 }

// BinaryFormat inspects the leading bytes of a graph file and reports which
// binary container they announce: 2 for an .aqg v2 container, 1 for the
// legacy v1 WriteBinary format, 0 for anything else (text formats included).
// Fewer than 8 bytes of head always report 0.
func BinaryFormat(head []byte) int {
	if len(head) < 8 {
		return 0
	}
	if string(head[:8]) == aqgMagic {
		return 2
	}
	var v1 [8]byte
	binary.LittleEndian.PutUint64(v1[:], binMagic)
	if bytes.Equal(head[:8], v1[:]) {
		return 1
	}
	return 0
}

// WriteContainer serializes a directed graph as an .aqg v2 container. The
// in-CSR is persisted alongside the out-CSR, so loading performs no rebuild.
func WriteContainer(w io.Writer, g *Directed) error {
	h := &aqgHeader{
		n:     int64(g.n),
		slots: int64(len(g.outAdj)),
		edges: int64(len(g.outAdj)),
	}
	h.layout()
	cw := newContainerWriter(w, h)
	cw.int64Section(0, g.outOff)
	cw.vSection(1, g.outAdj)
	cw.int64Section(2, g.inOff)
	cw.vSection(3, g.inAdj)
	return cw.finish()
}

// WriteUndirectedContainer serializes an undirected graph as an .aqg v2
// container, persisting the mate-slot and dense-edge-id indexes so nothing is
// reconstructed on load. This is the checkpoint format for the engine's
// materialized undirected graphs.
func WriteUndirectedContainer(w io.Writer, g *Undirected) error {
	h := &aqgHeader{
		flags: aqgFlagUndirected,
		n:     int64(g.n),
		slots: int64(len(g.adj)),
		edges: g.m,
	}
	h.layout()
	cw := newContainerWriter(w, h)
	cw.int64Section(0, g.off)
	cw.vSection(1, g.adj)
	cw.int64Section(2, g.mate)
	cw.int64Section(3, g.eid)
	return cw.finish()
}

// containerWriter streams header and sections with canonical padding,
// latching the first error.
type containerWriter struct {
	bw  *bufio.Writer
	h   *aqgHeader
	pos int64
	err error
}

func newContainerWriter(w io.Writer, h *aqgHeader) *containerWriter {
	cw := &containerWriter{bw: bufio.NewWriterSize(w, 1<<20), h: h, pos: aqgHeaderSize}
	var hdr [aqgHeaderSize]byte
	copy(hdr[0:8], aqgMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], aqgVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], h.flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(h.n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(h.slots))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(h.edges))
	at := 48
	for _, s := range h.sec {
		binary.LittleEndian.PutUint64(hdr[at:], uint64(s.off))
		binary.LittleEndian.PutUint64(hdr[at+8:], uint64(s.size))
		at += 16
	}
	_, cw.err = cw.bw.Write(hdr[:])
	return cw
}

// pad advances the stream to the section's offset with zero bytes.
func (cw *containerWriter) pad(i int) {
	if cw.err != nil {
		return
	}
	var zero [8]byte
	for cw.pos < cw.h.sec[i].off {
		n := cw.h.sec[i].off - cw.pos
		if n > 8 {
			n = 8
		}
		if _, cw.err = cw.bw.Write(zero[:n]); cw.err != nil {
			return
		}
		cw.pos += n
	}
}

func (cw *containerWriter) int64Section(i int, v []int64) {
	cw.pad(i)
	if cw.err != nil {
		return
	}
	if hostLittleEndian {
		if len(v) > 0 {
			_, cw.err = cw.bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8))
		}
	} else {
		var buf [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, cw.err = cw.bw.Write(buf[:]); cw.err != nil {
				return
			}
		}
	}
	cw.pos += int64(len(v)) * 8
}

func (cw *containerWriter) vSection(i int, v []V) {
	cw.pad(i)
	if cw.err != nil {
		return
	}
	if hostLittleEndian {
		if len(v) > 0 {
			_, cw.err = cw.bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4))
		}
	} else {
		var buf [4]byte
		for _, x := range v {
			binary.LittleEndian.PutUint32(buf[:], uint32(x))
			if _, cw.err = cw.bw.Write(buf[:]); cw.err != nil {
				return
			}
		}
	}
	cw.pos += int64(len(v)) * 4
}

func (cw *containerWriter) finish() error {
	if cw.err != nil {
		return cw.err
	}
	return cw.bw.Flush()
}

// parseAqgHeader decodes and validates the fixed header: magic, version,
// flags, plausible shape, and a section table that matches the canonical
// layout exactly.
func parseAqgHeader(buf []byte) (*aqgHeader, error) {
	if string(buf[:8]) != aqgMagic {
		return nil, fmt.Errorf("graph: not an .aqg container (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != aqgVersion {
		return nil, fmt.Errorf("graph: unsupported container version %d (want %d)", v, aqgVersion)
	}
	h := &aqgHeader{
		flags: binary.LittleEndian.Uint32(buf[12:16]),
		n:     int64(binary.LittleEndian.Uint64(buf[16:24])),
		slots: int64(binary.LittleEndian.Uint64(buf[24:32])),
		edges: int64(binary.LittleEndian.Uint64(buf[32:40])),
	}
	if h.flags&^uint32(aqgFlagUndirected) != 0 {
		return nil, fmt.Errorf("graph: container carries unknown flag bits %#x", h.flags)
	}
	const maxSlots = (1 << 62) / 8 // keeps every byte-size computation in int64
	if h.n < 0 || h.n >= int64(NoVertex) || h.slots < 0 || h.slots > maxSlots || h.edges < 0 {
		return nil, fmt.Errorf("graph: container header implausible (n=%d slots=%d edges=%d)", h.n, h.slots, h.edges)
	}
	if h.undirected() {
		if h.slots != 2*h.edges {
			return nil, fmt.Errorf("graph: undirected container slots=%d, want 2×edges=%d", h.slots, 2*h.edges)
		}
	} else if h.edges != h.slots {
		return nil, fmt.Errorf("graph: directed container edges=%d, want slots=%d", h.edges, h.slots)
	}
	sizes := h.sectionSizes()
	pos := int64(aqgHeaderSize)
	at := 48
	for i := range h.sec {
		h.sec[i] = aqgSection{
			off:  int64(binary.LittleEndian.Uint64(buf[at:])),
			size: int64(binary.LittleEndian.Uint64(buf[at+8:])),
		}
		at += 16
		if h.sec[i].off != pos || h.sec[i].size != sizes[i] {
			return nil, fmt.Errorf("graph: container section table corrupt (section %d at %d/%d bytes, want %d/%d)",
				i, h.sec[i].off, h.sec[i].size, pos, sizes[i])
		}
		pos = align8(pos + sizes[i])
	}
	// The format is canonical: reserved bytes and header padding must be zero,
	// so every accepted container re-serializes byte-identically.
	if !allZero(buf[40:48]) || !allZero(buf[112:aqgHeaderSize]) {
		return nil, fmt.Errorf("graph: container header padding not zero")
	}
	return h, nil
}

// allZero reports whether every byte in b is zero.
func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// LoadContainer opens an .aqg container with zero copy where possible: on
// supported (unix, little-endian) hosts the file is mmap'd and the graph's
// CSR slices alias the mapping directly after a bounded validation pass —
// no parsing, no rebuild, O(1) heap allocation. Call the returned container's
// Release to unmap once the graph is no longer needed. On hosts without mmap
// (or on big-endian machines, or when mapping fails) it falls back to the
// streaming ReadContainer, which heap-allocates the slices.
func LoadContainer(path string) (*Container, error) {
	if hostLittleEndian {
		if data, err := mmapFile(path); err == nil {
			c, cerr := containerFromMapping(data)
			if cerr != nil {
				munmapFile(data)
				return nil, cerr
			}
			return c, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadContainer(bufio.NewReaderSize(f, 1<<16))
}

// containerFromMapping parses, validates and aliases a complete in-memory
// container image (the mmap path). Caller guarantees a little-endian host;
// the returned container's slices alias data.
func containerFromMapping(data []byte) (*Container, error) {
	if len(data) < aqgHeaderSize {
		return nil, fmt.Errorf("graph: container truncated (%d bytes, header needs %d)", len(data), aqgHeaderSize)
	}
	h, err := parseAqgHeader(data)
	if err != nil {
		return nil, err
	}
	if end := h.payloadEnd(); int64(len(data)) != end {
		return nil, fmt.Errorf("graph: container is %d bytes, sections end at %d", len(data), end)
	}
	pos := int64(aqgHeaderSize)
	for _, s := range h.sec {
		if !allZero(data[pos:s.off]) { // canonical: alignment gaps are zero
			return nil, fmt.Errorf("graph: container section padding not zero")
		}
		pos = s.off + s.size
	}
	sec := func(i int) []byte { s := h.sec[i]; return data[s.off : s.off+s.size] }
	var c *Container
	if h.undirected() {
		c, err = h.assembleUndirected(aliasInt64(sec(0)), aliasV(sec(1)), aliasInt64(sec(2)), aliasInt64(sec(3)))
	} else {
		c, err = h.assembleDirected(aliasInt64(sec(0)), aliasV(sec(1)), aliasInt64(sec(2)), aliasV(sec(3)))
	}
	if err != nil {
		return nil, err
	}
	c.mapping = data
	return c, nil
}

// ReadContainer deserializes an .aqg container from a stream — the portable
// path for pipes, gzip-wrapped containers, and hosts where mmap is
// unavailable. The slices are heap-allocated (~1× the file size); the
// validation is identical to the mmap path.
func ReadContainer(r io.Reader) (*Container, error) {
	hdr := make([]byte, aqgHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated container header: %w", err)
	}
	h, err := parseAqgHeader(hdr)
	if err != nil {
		return nil, err
	}
	pos := int64(aqgHeaderSize)
	skipTo := func(off int64) error {
		if off < pos {
			return fmt.Errorf("graph: container sections out of order")
		}
		var gap [8]byte // alignment gaps are at most 7 bytes and must be zero
		if off-pos > int64(len(gap)) {
			return fmt.Errorf("graph: container sections out of order")
		}
		if _, err := io.ReadFull(r, gap[:off-pos]); err != nil {
			return fmt.Errorf("graph: truncated container: %w", err)
		}
		if !allZero(gap[:off-pos]) {
			return fmt.Errorf("graph: container section padding not zero")
		}
		pos = off
		return nil
	}
	sectionName := func(i int) string {
		if h.undirected() {
			return [...]string{"offsets", "adjacency", "mate", "edge-id"}[i]
		}
		return [...]string{"out-offsets", "out-adjacency", "in-offsets", "in-adjacency"}[i]
	}
	readI64 := func(i int) ([]int64, error) {
		if err := skipTo(h.sec[i].off); err != nil {
			return nil, err
		}
		out, err := readInt64Section(r, h.sec[i].size/8, sectionName(i))
		pos += h.sec[i].size
		return out, err
	}
	readV := func(i int) ([]V, error) {
		if err := skipTo(h.sec[i].off); err != nil {
			return nil, err
		}
		out, err := readVSection(r, h.sec[i].size/4, sectionName(i))
		pos += h.sec[i].size
		return out, err
	}
	s0, err := readI64(0)
	if err != nil {
		return nil, err
	}
	s1, err := readV(1)
	if err != nil {
		return nil, err
	}
	var c *Container
	if h.undirected() {
		mate, err := readI64(2)
		if err != nil {
			return nil, err
		}
		eid, err := readI64(3)
		if err != nil {
			return nil, err
		}
		c, err = h.assembleUndirected(s0, s1, mate, eid)
		if err != nil {
			return nil, err
		}
	} else {
		inOff, err := readI64(2)
		if err != nil {
			return nil, err
		}
		inAdj, err := readV(3)
		if err != nil {
			return nil, err
		}
		c, err = h.assembleDirected(s0, s1, inOff, inAdj)
		if err != nil {
			return nil, err
		}
	}
	// Canonical containers end exactly at the last section.
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing data after container sections")
	}
	return c, nil
}

// assembleDirected validates both CSRs and wraps them in a Directed graph.
func (h *aqgHeader) assembleDirected(outOff []int64, outAdj []V, inOff []int64, inAdj []V) (*Container, error) {
	if err := validateCSR(h.n, outOff, outAdj, "out"); err != nil {
		return nil, err
	}
	if err := validateCSR(h.n, inOff, inAdj, "in"); err != nil {
		return nil, err
	}
	g := &Directed{n: int(h.n), outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
	return &Container{Directed: g}, nil
}

// assembleUndirected validates the CSR plus the mate/eid indexes and wraps
// them in an Undirected graph.
func (h *aqgHeader) assembleUndirected(off []int64, adj []V, mate, eid []int64) (*Container, error) {
	if err := validateCSR(h.n, off, adj, "adjacency"); err != nil {
		return nil, err
	}
	if err := validateUndirectedIndex(h.n, h.edges, off, adj, mate, eid); err != nil {
		return nil, err
	}
	g := &Undirected{n: int(h.n), off: off, adj: adj, mate: mate, eid: eid, m: h.edges}
	return &Container{Undirected: g}, nil
}

// validateCSR is the bounded load-time validation pass over one CSR: offsets
// monotone from 0 to len(adj), every target in range, every segment strictly
// increasing (sorted, deduplicated) with no self-loops — exactly the
// invariants the builders emit and the binary-search query paths (HasArc,
// EdgeIDOf) rely on. The scan is vertex-parallel and allocates O(1).
func validateCSR(n int64, off []int64, adj []V, what string) error {
	if int64(len(off)) != n+1 {
		return fmt.Errorf("graph: container %s offsets length %d, want %d", what, len(off), n+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: container %s offsets must start at 0", what)
	}
	if off[n] != int64(len(adj)) {
		return fmt.Errorf("graph: container %s offsets end at %d, want %d", what, off[n], len(adj))
	}
	var badOff, badTarget, badOrder atomic.Bool
	parallel.For(0, int(n), parallel.Threads(0), func(u int) {
		lo, hi := off[u], off[u+1]
		if lo < 0 || lo > hi || hi > int64(len(adj)) {
			badOff.Store(true)
			return
		}
		var prev V
		first := true
		for _, v := range adj[lo:hi] {
			if int64(v) >= n || v == V(u) {
				badTarget.Store(true)
				return
			}
			if !first && v <= prev {
				badOrder.Store(true)
				return
			}
			prev, first = v, false
		}
	})
	switch {
	case badOff.Load():
		return fmt.Errorf("graph: container %s offsets not monotone", what)
	case badTarget.Load():
		return fmt.Errorf("graph: container %s adjacency target out of range", what)
	case badOrder.Load():
		return fmt.Errorf("graph: container %s adjacency segment not strictly increasing", what)
	}
	return nil
}

// validateUndirectedIndex bounds-checks the mate/eid sections: every mate
// slot is an involution landing in the reverse endpoint's segment, and the
// two slots of an edge agree on an in-range edge id.
func validateUndirectedIndex(n, m int64, off []int64, adj []V, mate, eid []int64) error {
	slots := int64(len(adj))
	if int64(len(mate)) != slots || int64(len(eid)) != slots {
		return fmt.Errorf("graph: container mate/eid length %d/%d, want %d", len(mate), len(eid), slots)
	}
	var badMate, badEid atomic.Bool
	parallel.For(0, int(n), parallel.Threads(0), func(u int) {
		for s := off[u]; s < off[u+1]; s++ {
			r := mate[s]
			if r < 0 || r >= slots || mate[r] != s {
				badMate.Store(true)
				return
			}
			v := adj[s]
			if r < off[v] || r >= off[v+1] || adj[r] != V(u) {
				badMate.Store(true)
				return
			}
			if id := eid[s]; id < 0 || id >= m || eid[r] != id {
				badEid.Store(true)
				return
			}
		}
	})
	switch {
	case badMate.Load():
		return fmt.Errorf("graph: container mate index corrupt")
	case badEid.Load():
		return fmt.Errorf("graph: container edge-id index corrupt")
	}
	return nil
}

// aliasInt64 reinterprets an 8-byte-aligned little-endian section of the
// mapping as []int64 without copying. Callers guarantee alignment (sections
// start 8-byte aligned within a page-aligned mapping) and host endianness.
func aliasInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// aliasV reinterprets a 4-byte-aligned little-endian section of the mapping
// as []V without copying.
func aliasV(b []byte) []V {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*V)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aquila/internal/parallel"
)

// maxEdgeListLine mirrors the seed scanner's 1 MiB token buffer: lines at or
// beyond this length fail with bufio.ErrTooLong, exactly as the serial
// scanner does when its buffer fills before the newline arrives.
const maxEdgeListLine = 1 << 20

// minParseChunk is the smallest byte range worth handing to a parser worker;
// inputs below p*minParseChunk use fewer chunks (down to one).
const minParseChunk = 1 << 16

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#'- or '%'-prefixed lines are comments, matching SNAP and KONECT dumps).
// It returns the edge list and the implied vertex count (max id + 1).
//
// The input is slurped and parsed in parallel: the byte buffer is split at
// newline boundaries into per-worker chunks whose edge slices concatenate in
// input order. Accepted inputs, rejected inputs, error text and line numbers
// are identical to the line-at-a-time seed parser (ReadEdgeListSerial), which
// the differential and fuzz tests pin.
func ReadEdgeList(r io.Reader) (edges []Edge, n int, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	return ParseEdgeListBytes(data, 0)
}

// ParseEdgeListBytes parses an in-memory edge list with up to threads workers
// (Threads semantics: < 1 means GOMAXPROCS), with ReadEdgeList's exact
// semantics.
func ParseEdgeListBytes(data []byte, threads int) ([]Edge, int, error) {
	p := parallel.Threads(threads)
	if c := len(data) / minParseChunk; c < p {
		p = c
	}
	if p < 1 {
		p = 1
	}
	starts := splitAtLines(data, p)
	chunks := make([]parseChunk, len(starts))
	if len(starts) == 1 {
		chunks[0] = parseEdgeChunk(data, 0)
	} else {
		// First pass: line counts per chunk (cheap newline scan) so every
		// worker knows its absolute starting line for error messages.
		lines := make([]int, len(starts)+1)
		parallel.For(0, len(starts), p, func(i int) {
			c := chunkBytes(data, starts, i)
			nl := bytes.Count(c, []byte{'\n'})
			if len(c) > 0 && c[len(c)-1] != '\n' {
				nl++ // final line without trailing newline still counts
			}
			lines[i+1] = nl
		})
		for i := 0; i < len(starts); i++ {
			lines[i+1] += lines[i]
		}
		parallel.For(0, len(starts), p, func(i int) {
			chunks[i] = parseEdgeChunk(chunkBytes(data, starts, i), lines[i])
		})
	}

	// The earliest chunk with an error wins: chunk order is line order, and
	// within a chunk parsing stopped at its first bad line — together that is
	// the first error the serial scan would have hit.
	total := 0
	maxID := int64(-1)
	for i := range chunks {
		if chunks[i].err != nil {
			return nil, 0, chunks[i].err
		}
		total += len(chunks[i].edges)
		if chunks[i].maxID > maxID {
			maxID = chunks[i].maxID
		}
	}
	if total == 0 {
		return nil, int(maxID + 1), nil
	}
	edges := make([]Edge, total)
	at := make([]int, len(chunks)+1)
	for i := range chunks {
		at[i+1] = at[i] + len(chunks[i].edges)
	}
	parallel.For(0, len(chunks), p, func(i int) {
		copy(edges[at[i]:at[i+1]], chunks[i].edges)
	})
	return edges, int(maxID + 1), nil
}

// splitAtLines returns the start offsets of up to want chunks of data, each
// boundary advanced to the byte after a newline so no line straddles chunks.
func splitAtLines(data []byte, want int) []int {
	starts := []int{0}
	for i := 1; i < want; i++ {
		pos := i * len(data) / want
		prev := starts[len(starts)-1]
		if pos <= prev {
			continue
		}
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			break
		}
		if s := pos + nl + 1; s > prev && s < len(data) {
			starts = append(starts, s)
		}
	}
	return starts
}

// chunkBytes is chunk i of data under the start offsets.
func chunkBytes(data []byte, starts []int, i int) []byte {
	if i+1 < len(starts) {
		return data[starts[i]:starts[i+1]]
	}
	return data[starts[i]:]
}

// parseChunk is one worker's share of a parallel edge-list parse.
type parseChunk struct {
	edges []Edge
	maxID int64
	err   error
}

// parseEdgeChunk parses one newline-aligned chunk, numbering lines from
// startLine (lines before this chunk). The per-line rules replicate the seed
// scanner parser byte for byte: trim, comment skip, >=2 whitespace fields,
// ParseInt errors wrapped with the absolute line number.
func parseEdgeChunk(data []byte, startLine int) parseChunk {
	out := parseChunk{maxID: -1}
	line := startLine
	for len(data) > 0 {
		var raw []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			raw, data = data[:nl], data[nl+1:]
		} else {
			raw, data = data, nil
		}
		line++
		if len(raw) >= maxEdgeListLine {
			out.err = bufio.ErrTooLong
			return out
		}
		text := strings.TrimSpace(string(raw))
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			out.err = fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
			return out
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			out.err = fmt.Errorf("graph: line %d: bad source id: %v", line, err)
			return out
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			out.err = fmt.Errorf("graph: line %d: bad target id: %v", line, err)
			return out
		}
		if u < 0 || v < 0 || u > int64(NoVertex)-1 || v > int64(NoVertex)-1 {
			out.err = fmt.Errorf("graph: line %d: vertex id out of range", line)
			return out
		}
		if u > out.maxID {
			out.maxID = u
		}
		if v > out.maxID {
			out.maxID = v
		}
		out.edges = append(out.edges, Edge{V(u), V(v)})
	}
	return out
}

// ReadEdgeListSerial is the seed line-at-a-time parser, kept verbatim as the
// pinned reference the parallel parser is differentially tested against.
func ReadEdgeListSerial(r io.Reader) (edges []Edge, n int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	maxID := int64(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad source id: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad target id: %v", line, err)
		}
		if u < 0 || v < 0 || u > int64(NoVertex)-1 || v > int64(NoVertex)-1 {
			return nil, 0, fmt.Errorf("graph: line %d: vertex id out of range", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{V(u), V(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, int(maxID + 1), nil
}

// WriteEdgeList writes a directed graph as a plain "u v" edge list.
func WriteEdgeList(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(V(u)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

const binMagic = 0x41515543 // "AQUC"

// WriteBinary serializes a directed graph in the legacy v1 little-endian
// format (magic, n, arc count, out-CSR only). Superseded by the .aqg v2
// container (WriteContainer), which also persists the in-CSR and is
// mmap-able; WriteBinary is kept so existing v1 files remain reproducible
// and the compat reader stays testable.
func WriteBinary(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	hdr := []int64{binMagic, int64(g.n), int64(len(g.outAdj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outOff); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a directed graph written by WriteBinary (the
// legacy v1 format, which stores only the out-CSR). It constructs the graph
// in place with ~1× the final footprint: the offsets and adjacency are read
// into exactly-sized arrays and the in-CSR is computed by a direct O(n+m)
// transpose — no intermediate []Edge expansion and no re-sort through the
// builder, which the old reader paid (~3× peak memory) on every load.
//
// Files whose segments are not canonical (sorted, deduplicated, loop-free —
// everything WriteBinary emits is) keep the old semantics: they are
// normalized through the builder path, at the old path's memory cost.
func ReadBinary(r io.Reader) (*Directed, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	magic := int64(binary.LittleEndian.Uint64(hdr[0:8]))
	n := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	m := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if n < 0 || m < 0 || n >= int64(NoVertex) {
		return nil, fmt.Errorf("graph: implausible size in header (n=%d, m=%d)", n, m)
	}
	off, err := readInt64Section(br, n+1, "offsets")
	if err != nil {
		return nil, err
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt offset array (must start at 0)")
	}
	for u := int64(0); u < n; u++ {
		if off[u] > off[u+1] || off[u+1] > m {
			return nil, fmt.Errorf("graph: corrupt offset array")
		}
	}
	if off[n] != m {
		return nil, fmt.Errorf("graph: corrupt offset array")
	}
	adj, err := readVSection(br, m, "adjacency")
	if err != nil {
		return nil, err
	}
	canonical := true
	for u := int64(0); u < n; u++ {
		var prev V
		first := true
		for _, v := range adj[off[u]:off[u+1]] {
			if int64(v) >= n {
				return nil, fmt.Errorf("graph: adjacency target out of range")
			}
			if v == V(u) || (!first && v <= prev) {
				canonical = false
			}
			prev, first = v, false
		}
	}
	if !canonical {
		// Non-canonical segments (unsorted, duplicated, or self-looped) never
		// come from WriteBinary; normalize them through the builder exactly as
		// the old reader did.
		edges := make([]Edge, 0, m)
		for u := int64(0); u < n; u++ {
			for _, v := range adj[off[u]:off[u+1]] {
				edges = append(edges, Edge{V(u), v})
			}
		}
		return BuildDirected(int(n), edges), nil
	}
	inOff, inAdj := invertCSR(int(n), off, adj)
	return &Directed{n: int(n), outOff: off, outAdj: adj, inOff: inOff, inAdj: inAdj}, nil
}

// invertCSR computes the in-CSR transpose of a canonical out-CSR in O(n+m)
// without materializing an edge list: count in-degrees, prefix-sum, scatter
// in ascending source order (which leaves every in-segment sorted, and
// deduplicated because the out-segments were).
func invertCSR(n int, off []int64, adj []V) ([]int64, []V) {
	inOff := make([]int64, n+1)
	for _, v := range adj {
		inOff[v+1]++
	}
	for i := 0; i < n; i++ {
		inOff[i+1] += inOff[i]
	}
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	inAdj := make([]V, len(adj))
	for u := 0; u < n; u++ {
		for _, v := range adj[off[u]:off[u+1]] {
			inAdj[cursor[v]] = V(u)
			cursor[v]++
		}
	}
	return inOff, inAdj
}

// Section readers shared by the v1 reader and the v2 streaming container
// loader. Plausibly-sized sections are allocated exactly once (the ~1×
// memory property); only absurd header claims beyond maxExactSection fall
// back to growth tracking delivered bytes, so a corrupt header cannot force
// a huge allocation before the missing data is noticed. Decoding goes
// through a small reused byte buffer — unlike binary.Read, which allocates
// an internal buffer per call.
const (
	sectionChunkElems = 1 << 16 // elements decoded per read: ≤512 KiB transient buffer
	maxExactSection   = 1 << 24 // elements allocated up front when the header is plausible
)

func readInt64Section(r io.Reader, count int64, what string) ([]int64, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative %s section", what)
	}
	buf := make([]byte, 8*min64(count, sectionChunkElems))
	out := make([]int64, min64(count, maxExactSection))
	filled := int64(0)
	for filled < count {
		c := min64(count-filled, sectionChunkElems)
		b := buf[:8*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("graph: truncated %s: %w", what, err)
		}
		if int64(len(out)) < filled+c {
			out = append(out, make([]int64, filled+c-int64(len(out)))...)
		}
		for i := int64(0); i < c; i++ {
			out[filled+i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		filled += c
	}
	return out, nil
}

func readVSection(r io.Reader, count int64, what string) ([]V, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative %s section", what)
	}
	buf := make([]byte, 4*min64(count, sectionChunkElems))
	out := make([]V, min64(count, maxExactSection))
	filled := int64(0)
	for filled < count {
		c := min64(count-filled, sectionChunkElems)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("graph: truncated %s: %w", what, err)
		}
		if int64(len(out)) < filled+c {
			out = append(out, make([]V, filled+c-int64(len(out)))...)
		}
		for i := int64(0); i < c; i++ {
			out[filled+i] = V(binary.LittleEndian.Uint32(b[4*i:]))
		}
		filled += c
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

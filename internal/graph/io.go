package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#'- or '%'-prefixed lines are comments, matching SNAP and KONECT dumps).
// It returns the edge list and the implied vertex count (max id + 1).
func ReadEdgeList(r io.Reader) (edges []Edge, n int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	maxID := int64(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad source id: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad target id: %v", line, err)
		}
		if u < 0 || v < 0 || u > int64(NoVertex)-1 || v > int64(NoVertex)-1 {
			return nil, 0, fmt.Errorf("graph: line %d: vertex id out of range", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{V(u), V(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, int(maxID + 1), nil
}

// WriteEdgeList writes a directed graph as a plain "u v" edge list.
func WriteEdgeList(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(V(u)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

const binMagic = 0x41515543 // "AQUC"

// WriteBinary serializes a directed graph in a compact little-endian format
// (magic, n, arc count, out-CSR). The in-CSR is reconstructed on load.
func WriteBinary(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	hdr := []int64{binMagic, int64(g.n), int64(len(g.outAdj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outOff); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a directed graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Directed, error) {
	br := bufio.NewReader(r)
	var magic, n, m int64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 || n >= int64(NoVertex) {
		return nil, fmt.Errorf("graph: implausible size in header (n=%d, m=%d)", n, m)
	}
	// Grow the arrays chunk by chunk so a corrupt header claiming absurd
	// sizes fails on missing data instead of attempting the full allocation.
	off, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	adj, err := readU32s(br, m)
	if err != nil {
		return nil, err
	}
	// Rebuild the edge list to regenerate both CSRs through the validated
	// builder path (also re-checks sortedness and bounds).
	if len(off) == 0 || off[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt offset array (must start at 0)")
	}
	edges := make([]Edge, 0, m)
	for u := int64(0); u < n; u++ {
		if off[u] > off[u+1] || off[u+1] > m {
			return nil, fmt.Errorf("graph: corrupt offset array")
		}
		for s := off[u]; s < off[u+1]; s++ {
			if int64(adj[s]) >= n {
				return nil, fmt.Errorf("graph: adjacency target out of range")
			}
			edges = append(edges, Edge{V(u), adj[s]})
		}
	}
	return BuildDirected(int(n), edges), nil
}

// chunked readers: allocation tracks delivered bytes, not header claims.
const readChunk = 1 << 16

func readInt64s(r io.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunk))
	for int64(len(out)) < count {
		c := min64(count-int64(len(out)), readChunk)
		chunk := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets: %w", err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readU32s(r io.Reader, count int64) ([]V, error) {
	out := make([]V, 0, min64(count, readChunk))
	for int64(len(out)) < count {
		c := min64(count-int64(len(out)), readChunk)
		chunk := make([]V, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: truncated adjacency: %w", err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package graph

import "errors"

// mmapFile is unavailable on this platform; LoadContainer falls back to the
// streaming ReadContainer path.
func mmapFile(path string) ([]byte, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

func munmapFile([]byte) error { return nil }

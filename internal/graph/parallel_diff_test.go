package graph

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// diffLCG is a tiny deterministic generator for differential inputs (the gen
// package can't be imported here: it depends on graph).
type diffLCG uint64

func (r *diffLCG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 11
}

func (r *diffLCG) intn(n int) int { return int(r.next() % uint64(n)) }

// diffEdges generates m edges over n vertices: mostly uniform, a skewed slice
// aimed at a handful of hubs, plus sprinkled self-loops and duplicates so the
// drop/dedup paths are exercised.
func diffEdges(n, m int, seed uint64) []Edge {
	r := diffLCG(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := V(r.intn(n))
		v := V(r.intn(n))
		switch r.intn(10) {
		case 0: // hub edge
			v = V(r.intn(1 + n/50))
		case 1: // self-loop
			v = u
		case 2: // duplicate of an earlier edge
			if len(edges) > 0 {
				e := edges[r.intn(len(edges))]
				u, v = e.U, e.V
			}
		}
		edges = append(edges, Edge{u, v})
	}
	return edges
}

func sameDirected(t *testing.T, want, got *Directed) {
	t.Helper()
	if want.n != got.n {
		t.Fatalf("n: want %d, got %d", want.n, got.n)
	}
	for _, c := range []struct {
		name       string
		wOff, gOff []int64
		wAdj, gAdj []V
	}{
		{"out", want.outOff, got.outOff, want.outAdj, got.outAdj},
		{"in", want.inOff, got.inOff, want.inAdj, got.inAdj},
	} {
		if !reflect.DeepEqual(c.wOff, c.gOff) {
			t.Fatalf("%s-CSR offsets differ", c.name)
		}
		if !reflect.DeepEqual(c.wAdj, c.gAdj) {
			t.Fatalf("%s-CSR adjacency differs", c.name)
		}
	}
}

func sameUndirected(t *testing.T, want, got *Undirected) {
	t.Helper()
	if want.n != got.n || want.m != got.m {
		t.Fatalf("shape: want n=%d m=%d, got n=%d m=%d", want.n, want.m, got.n, got.m)
	}
	if !reflect.DeepEqual(want.off, got.off) {
		t.Fatal("offsets differ")
	}
	if !reflect.DeepEqual(want.adj, got.adj) {
		t.Fatal("adjacency differs")
	}
	if !reflect.DeepEqual(want.mate, got.mate) {
		t.Fatal("mate index differs")
	}
	if !reflect.DeepEqual(want.eid, got.eid) {
		t.Fatal("edge ids differ")
	}
}

// TestBuildDirectedParallelMatchesSerial pins the tentpole determinism claim:
// every worker count yields byte-identical CSR to the serial seed builder.
// Large cases go through the public API (past the minParallelBuild clamp);
// small cases drive buildCSR directly so degenerate shapes still hit the
// parallel code path.
func TestBuildDirectedParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{50, 400}, {1000, 5000}, {4000, minParallelBuild + 7}, {1 << 12, 1 << 16},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			edges := diffEdges(tc.n, tc.m, seed)
			want := BuildDirectedSerial(tc.n, edges)
			for _, p := range []int{2, 3, 4, 8} {
				if tc.m >= minParallelBuild {
					sameDirected(t, want, BuildDirectedThreads(tc.n, edges, p))
				} else {
					outOff, outAdj := buildCSR(tc.n, edges, false, p)
					inOff, inAdj := buildCSR(tc.n, edges, true, p)
					got := &Directed{n: tc.n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
					sameDirected(t, want, got)
				}
			}
		}
	}
}

func TestBuildUndirectedParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{50, 400}, {1000, 5000}, {1 << 12, minParallelBuild + 100}, {1 << 12, 1 << 16},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			edges := diffEdges(tc.n, tc.m, seed)
			want := BuildUndirectedSerial(tc.n, edges)
			for _, p := range []int{2, 4, 8} {
				var got *Undirected
				if tc.m >= minParallelBuild {
					got = BuildUndirectedThreads(tc.n, edges, p)
				} else {
					// Force the parallel symmetrize+build+finish path below
					// the size clamp.
					sym := make([]Edge, 0, 2*len(edges))
					for _, e := range edges {
						sym = append(sym, e, Edge{e.V, e.U})
					}
					off, adj := buildCSR(tc.n, sym, false, p)
					got = finishUndirectedSerial(tc.n, off, adj)
				}
				sameUndirected(t, want, got)
			}
		}
	}
}

// TestFinishUndirectedParallelMatchesSerial targets the parallel mate/eid
// assignment specifically, on inputs big enough to pass its size gate.
func TestFinishUndirectedParallelMatchesSerial(t *testing.T) {
	edges := diffEdges(1<<12, 1<<16, 7)
	sym := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		sym = append(sym, e, Edge{e.V, e.U})
	}
	off, adj := buildCSRSerial(1<<12, sym, false)
	want := finishUndirectedSerial(1<<12, off, adj)
	for _, p := range []int{2, 4, 8} {
		sameUndirected(t, want, finishUndirected(1<<12, off, adj, p))
	}
}

func TestUndirectParallelMatchesSerial(t *testing.T) {
	g := BuildDirected(1<<12, diffEdges(1<<12, 1<<16, 11))
	want := undirectSerial(g)
	for _, p := range []int{2, 4, 8} {
		sameUndirected(t, want, UndirectThreads(g, p))
	}
}

// edgeListText renders lines edges of mixed formatting (comments, blanks,
// extra whitespace, trailing fields) deterministically.
func edgeListText(lines int, seed uint64) []byte {
	r := diffLCG(seed)
	var b bytes.Buffer
	for i := 0; i < lines; i++ {
		switch r.intn(12) {
		case 0:
			b.WriteString("# comment line\n")
		case 1:
			b.WriteString("% also a comment\n")
		case 2:
			b.WriteString("\n")
		case 3:
			b.WriteString("   \t \n")
		case 4:
			fmt.Fprintf(&b, "  %d\t%d   extra fields here\n", r.intn(5000), r.intn(5000))
		default:
			fmt.Fprintf(&b, "%d %d\n", r.intn(5000), r.intn(5000))
		}
	}
	return b.Bytes()
}

// TestParseEdgeListParallelMatchesSerial feeds inputs large enough to split
// into many chunks and requires identical (edges, n) for every thread count.
func TestParseEdgeListParallelMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		data := edgeListText(80_000, seed) // ~600 KB: ~9 chunks at minParseChunk
		wantEdges, wantN, err := ReadEdgeListSerial(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 4, 8} {
			edges, n, err := ParseEdgeListBytes(data, p)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			if n != wantN {
				t.Fatalf("p=%d: n: want %d, got %d", p, wantN, n)
			}
			if !reflect.DeepEqual(wantEdges, edges) {
				t.Fatalf("p=%d: edges differ", p)
			}
		}
	}
}

// TestParseEdgeListErrorParity checks malformed-input parity: same error text
// (including the absolute line number) as the serial scanner, with the bad
// line planted in early, middle and late chunks of a multi-chunk input.
func TestParseEdgeListErrorParity(t *testing.T) {
	badLines := []string{
		"0",                      // too few fields
		"a b",                    // bad source
		"0 x",                    // bad target
		"-1 2",                   // out of range
		"4294967295 0",           // NoVertex is reserved
		"1 99999999999999999999", // target overflows int64
	}
	filler := strings.Repeat("1 2\n3 4\n", 40_000) // ~320 KB of valid lines
	for _, bad := range badLines {
		for _, at := range []float64{0, 0.4, 0.9} {
			pos := int(at * float64(len(filler)))
			for pos < len(filler) && filler[pos] != '\n' {
				pos++
			}
			data := filler[:pos] + "\n" + bad + "\n" + filler[pos:]
			_, _, wantErr := ReadEdgeListSerial(strings.NewReader(data))
			if wantErr == nil {
				t.Fatalf("serial accepted %q", bad)
			}
			for _, p := range []int{1, 2, 4, 8} {
				_, _, err := ParseEdgeListBytes([]byte(data), p)
				if err == nil || err.Error() != wantErr.Error() {
					t.Fatalf("bad=%q at=%.1f p=%d: want error %q, got %v", bad, at, p, wantErr, err)
				}
			}
		}
	}
}

// TestParseEdgeListLongLineParity pins the bufio.ErrTooLong boundary: the
// serial scanner fails once a line reaches its 1 MiB buffer; the parallel
// parser must fail identically, and accept one byte less.
func TestParseEdgeListLongLineParity(t *testing.T) {
	okLine := "# " + strings.Repeat("x", maxEdgeListLine-3) // 1<<20 - 1 bytes
	tooLong := okLine + "x"
	for name, data := range map[string]string{
		"ok":      okLine + "\n1 2\n",
		"toolong": tooLong + "\n1 2\n",
	} {
		wantEdges, wantN, wantErr := ReadEdgeListSerial(strings.NewReader(data))
		for _, p := range []int{1, 4} {
			edges, n, err := ParseEdgeListBytes([]byte(data), p)
			switch {
			case wantErr == nil:
				if err != nil {
					t.Fatalf("%s p=%d: unexpected error %v", name, p, err)
				}
				if n != wantN || !reflect.DeepEqual(wantEdges, edges) {
					t.Fatalf("%s p=%d: result mismatch", name, p)
				}
			default:
				if !errors.Is(wantErr, bufio.ErrTooLong) {
					t.Fatalf("%s: serial error %v, want ErrTooLong", name, wantErr)
				}
				if !errors.Is(err, bufio.ErrTooLong) {
					t.Fatalf("%s p=%d: want ErrTooLong, got %v", name, p, err)
				}
			}
		}
	}
}

// TestReadEdgeListUsesParallelParser is a tripwire: the public entry point
// must agree with the serial reference on a mixed-format input.
func TestReadEdgeListUsesParallelParser(t *testing.T) {
	data := edgeListText(5_000, 99)
	wantEdges, wantN, err := ReadEdgeListSerial(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	edges, n, err := ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || !reflect.DeepEqual(wantEdges, edges) {
		t.Fatal("ReadEdgeList diverges from ReadEdgeListSerial")
	}
}

package graph

import (
	"math"
	"slices"
	"sync/atomic"

	"aquila/internal/parallel"
)

// Edge is one directed edge (or one undirected edge given as an ordered pair)
// in a builder's edge list.
type Edge struct {
	U, V V
}

// minParallelBuild is the edge count below which the parallel builder's
// coordination (histograms, atomic cursors, chunk scheduling) costs more than
// it saves; smaller inputs take the serial path.
const minParallelBuild = 1 << 14

// buildGrainFloor is the minimum per-chunk edge budget for the degree-chunked
// builder passes (segment sort, dedup, mate/eid); below this the dynamic
// claim traffic dominates.
const buildGrainFloor = 2048

// buildThreads resolves the worker count for one build: Threads semantics
// (n < 1 means GOMAXPROCS), clamped to 1 for inputs too small to split.
func buildThreads(threads, m int) int {
	if m < minParallelBuild {
		return 1
	}
	return parallel.Threads(threads)
}

// BuildDirected constructs a Directed graph over n vertices from an edge
// list. Self-loops are dropped and parallel edges deduplicated; adjacency
// lists come out sorted. Endpoints must be < n. Construction is parallel on
// large inputs (GOMAXPROCS workers); use BuildDirectedThreads to pin the
// worker count.
func BuildDirected(n int, edges []Edge) *Directed { return BuildDirectedThreads(n, edges, 0) }

// BuildDirectedThreads is BuildDirected with an explicit worker count
// (Threads semantics: values < 1 mean GOMAXPROCS). The result is identical to
// BuildDirectedSerial for every worker count.
func BuildDirectedThreads(n int, edges []Edge, threads int) *Directed {
	p := buildThreads(threads, len(edges))
	outOff, outAdj := buildCSR(n, edges, false, p)
	inOff, inAdj := buildCSR(n, edges, true, p)
	return &Directed{n: n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
}

// BuildDirectedSerial is the single-threaded seed builder, kept as the pinned
// baseline for the parallel-ingestion differential tests and the
// build-throughput benchmarks.
func BuildDirectedSerial(n int, edges []Edge) *Directed {
	outOff, outAdj := buildCSRSerial(n, edges, false)
	inOff, inAdj := buildCSRSerial(n, edges, true)
	return &Directed{n: n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
}

// BuildUndirected constructs an Undirected graph over n vertices. Each input
// edge {u,v} is stored in both adjacency lists regardless of the order given;
// duplicates (including a pair given in both orders) collapse to one edge.
// Self-loops are dropped. Construction is parallel on large inputs; use
// BuildUndirectedThreads to pin the worker count.
func BuildUndirected(n int, edges []Edge) *Undirected { return BuildUndirectedThreads(n, edges, 0) }

// BuildUndirectedThreads is BuildUndirected with an explicit worker count.
// The result is identical to BuildUndirectedSerial for every worker count.
func BuildUndirectedThreads(n int, edges []Edge, threads int) *Undirected {
	p := buildThreads(threads, len(edges))
	if p <= 1 {
		return BuildUndirectedSerial(n, edges)
	}
	// Symmetrize at fixed positions so the fill parallelizes without cursors;
	// self-loop pairs land as {u,u} twice and are dropped by the CSR builder.
	sym := make([]Edge, 2*len(edges))
	parallel.ForBlocks(0, len(edges), p, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			sym[2*i] = e
			sym[2*i+1] = Edge{e.V, e.U}
		}
	})
	off, adj := buildCSR(n, sym, false, p)
	return finishUndirected(n, off, adj, p)
}

// BuildUndirectedSerial is the single-threaded seed builder for undirected
// graphs — the pinned baseline mirroring BuildDirectedSerial.
func BuildUndirectedSerial(n int, edges []Edge) *Undirected {
	sym := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		sym = append(sym, e, Edge{e.V, e.U})
	}
	off, adj := buildCSRSerial(n, sym, false)
	return finishUndirectedSerial(n, off, adj)
}

// Undirect converts a directed graph to the undirected graph used by CC,
// BiCC and BgCC, per paper §6.1: create a reverse edge for any vertex pair
// that shares only one directed edge, keeping the vertex count unchanged.
func Undirect(g *Directed) *Undirected { return UndirectThreads(g, 0) }

// UndirectThreads is Undirect with an explicit worker count.
func UndirectThreads(g *Directed, threads int) *Undirected {
	p := buildThreads(threads, len(g.outAdj))
	if p <= 1 {
		return undirectSerial(g)
	}
	// Every out-CSR slot expands to a fixed pair of positions; self-loop
	// slots produce {u,u} twice, dropped by the builder.
	edges := make([]Edge, 2*len(g.outAdj))
	forDegreeChunks(g.outOff, p, func(u int) {
		for s := g.outOff[u]; s < g.outOff[u+1]; s++ {
			v := g.outAdj[s]
			edges[2*s] = Edge{V(u), v}
			edges[2*s+1] = Edge{v, V(u)}
		}
	})
	off, adj := buildCSR(g.n, edges, false, p)
	return finishUndirected(g.n, off, adj, p)
}

// undirectSerial is the seed implementation of Undirect.
func undirectSerial(g *Directed) *Undirected {
	edges := make([]Edge, 0, 2*len(g.outAdj))
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(V(u)) {
			if V(u) == v {
				continue
			}
			edges = append(edges, Edge{V(u), v}, Edge{v, V(u)})
		}
	}
	off, adj := buildCSRSerial(g.n, edges, false)
	return finishUndirectedSerial(g.n, off, adj)
}

// buildCSR counts, sorts and dedups an edge list into CSR arrays with up to p
// workers. If reverse is true the edges are interpreted as (V -> U),
// producing the in-CSR. The output is byte-identical to buildCSRSerial: the
// scatter order differs under the atomic cursors, but the per-vertex sort and
// dedup that follow erase it.
func buildCSR(n int, edges []Edge, reverse bool, p int) ([]int64, []V) {
	if p <= 1 {
		return buildCSRSerial(n, edges, reverse)
	}
	off := make([]int64, n+1)
	// A vertex's count in one worker's private histogram is bounded by that
	// worker's edge-block size, so int32 counters are safe below the guard
	// limit; at or beyond it they could silently wrap (mirroring
	// internal/parallel's int64 chunk-cursor guard, the failure is loud here:
	// we fall back to int64 counters — twice the histogram footprint, but
	// correct — rather than build a corrupt CSR).
	if histBlockMax(len(edges), p) >= histInt32Limit {
		degreeHistogram[int64](n, edges, reverse, p, off)
	} else {
		degreeHistogram[int32](n, edges, reverse, p, off)
	}
	prefixInPlace(off, p)

	// Scatter via per-vertex atomic cursors. Slot order within a vertex is
	// nondeterministic here; the segment sort below restores determinism.
	adj := make([]V, off[n])
	cursor := make([]int64, n)
	parallel.For(0, n, p, func(v int) { cursor[v] = off[v] })
	parallel.ForBlocks(0, len(edges), p, func(lo, hi, _ int) {
		for _, e := range edges[lo:hi] {
			u, v := e.U, e.V
			if u == v {
				continue
			}
			if reverse {
				u, v = v, u
			}
			slot := atomic.AddInt64(&cursor[u], 1) - 1
			adj[slot] = v
		}
	})

	sortSegments(n, off, adj, p)
	return dedupSegments(n, off, adj, p)
}

// histInt32Limit is the per-worker edge-block size at which the int32 degree
// histograms could overflow (2³¹ incident arcs within one block wrap an
// int32). It is a variable only so the int64 fallback path is unit-testable
// without materializing 2³¹ edges; see TestDegreeHistogramOverflowGuard.
var histInt32Limit = int64(math.MaxInt32)

// histBlockMax is the largest edge-block size any worker receives under the
// even static split blockRange performs.
func histBlockMax(m, p int) int64 {
	return int64((m + p - 1) / p)
}

// degreeHistogram fills off[v+1] with v's degree: one private histogram per
// worker over a contiguous block of the edge list (no atomics, no sharing),
// merged vertex-parallel. The counter width is a type parameter so the
// overflow-guarded int64 path shares this exact code.
func degreeHistogram[C int32 | int64](n int, edges []Edge, reverse bool, p int, off []int64) {
	hist := make([][]C, p)
	parallel.Run(p, func(w int) {
		lo, hi := blockRange(len(edges), p, w)
		h := make([]C, n)
		if reverse {
			for _, e := range edges[lo:hi] {
				if e.U != e.V {
					h[e.V]++
				}
			}
		} else {
			for _, e := range edges[lo:hi] {
				if e.U != e.V {
					h[e.U]++
				}
			}
		}
		hist[w] = h
	})
	parallel.For(0, n, p, func(v int) {
		var d int64
		for _, h := range hist {
			d += int64(h[v])
		}
		off[v+1] = d
	})
}

// buildCSRSerial is the seed builder: count, prefix-sum, scatter, sort, dedup
// — one thread, in place.
func buildCSRSerial(n int, edges []Edge, reverse bool) ([]int64, []V) {
	deg := make([]int64, n+1)
	src := func(e Edge) V { return e.U }
	dst := func(e Edge) V { return e.V }
	if reverse {
		src, dst = dst, src
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[src(e)+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	off := deg // now prefix sums; off[u+1] still the insertion cursor start
	adj := make([]V, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		s := src(e)
		adj[cursor[s]] = dst(e)
		cursor[s]++
	}
	for u := 0; u < n; u++ {
		slices.Sort(adj[off[u]:off[u+1]])
	}
	newOff := make([]int64, n+1)
	w := int64(0)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		seg := adj[lo:hi]
		newOff[u] = w
		var prev V
		first := true
		for _, v := range seg {
			if first || v != prev {
				adj[w] = v
				w++
				prev = v
				first = false
			}
		}
	}
	newOff[n] = w
	return newOff, adj[:w:w]
}

// sortSegments sorts every vertex's adjacency segment over degree-chunked
// parallel work units, so one hub's giant segment cannot serialize a worker's
// whole vertex range.
func sortSegments(n int, off []int64, adj []V, p int) {
	if p <= 1 {
		for u := 0; u < n; u++ {
			slices.Sort(adj[off[u]:off[u+1]])
		}
		return
	}
	forDegreeChunks(off, p, func(u int) {
		slices.Sort(adj[off[u]:off[u+1]])
	})
}

// dedupSegments compacts sorted adjacency segments, dropping duplicates. It
// counts the unique targets per vertex, prefix-sums the counts into the new
// offsets, and writes the compacted segments — each pass vertex-parallel.
func dedupSegments(n int, off []int64, adj []V, p int) ([]int64, []V) {
	newOff := make([]int64, n+1)
	forDegreeChunks(off, p, func(u int) {
		var c int64
		var prev V
		first := true
		for _, v := range adj[off[u]:off[u+1]] {
			if first || v != prev {
				c++
				prev = v
				first = false
			}
		}
		newOff[u+1] = c
	})
	prefixInPlace(newOff, p)
	newAdj := make([]V, newOff[n])
	forDegreeChunks(off, p, func(u int) {
		w := newOff[u]
		var prev V
		first := true
		for _, v := range adj[off[u]:off[u+1]] {
			if first || v != prev {
				newAdj[w] = v
				w++
				prev = v
				first = false
			}
		}
	})
	return newOff, newAdj
}

// finishUndirected computes the mate-slot and dense-edge-id indexes for a
// symmetric, sorted, deduplicated CSR with up to p workers. Edge ids are
// assigned exactly as in the serial pass — dense in (lower endpoint, slot)
// order — via a per-vertex prefix sum of lower-endpoint slot counts.
func finishUndirected(n int, off []int64, adj []V, p int) *Undirected {
	if p <= 1 || len(adj) < minParallelBuild {
		return finishUndirectedSerial(n, off, adj)
	}
	mate := make([]int64, len(adj))
	eid := make([]int64, len(adj))
	base := make([]int64, n+1)
	forDegreeChunks(off, p, func(u int) {
		var c int64
		for s := off[u]; s < off[u+1]; s++ {
			if adj[s] > V(u) {
				c++
			}
		}
		base[u+1] = c
	})
	prefixInPlace(base, p)
	forDegreeChunks(off, p, func(u int) {
		k := base[u]
		for s := off[u]; s < off[u+1]; s++ {
			v := adj[s]
			if v > V(u) {
				// The worker owning the lesser endpoint writes both slots;
				// every mate slot has exactly one owner, so the writes are
				// disjoint across workers.
				r := searchSlot(off, adj, v, V(u))
				mate[s] = r
				mate[r] = s
				eid[s] = k
				eid[r] = k
				k++
			}
		}
	})
	return &Undirected{n: n, off: off, adj: adj, mate: mate, eid: eid, m: base[n]}
}

// finishUndirectedSerial is the seed single-threaded mate/eid pass.
func finishUndirectedSerial(n int, off []int64, adj []V) *Undirected {
	mate := make([]int64, len(adj))
	eid := make([]int64, len(adj))
	var m int64
	for u := 0; u < n; u++ {
		for s := off[u]; s < off[u+1]; s++ {
			v := adj[s]
			if V(u) < v {
				// Find the reverse slot by binary search in v's list.
				r := searchSlot(off, adj, v, V(u))
				mate[s] = r
				mate[r] = s
				eid[s] = m
				eid[r] = m
				m++
			}
		}
	}
	return &Undirected{n: n, off: off, adj: adj, mate: mate, eid: eid, m: m}
}

func searchSlot(off []int64, adj []V, u, target V) int64 {
	lo, hi := off[u], off[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case adj[mid] < target:
			lo = mid + 1
		case adj[mid] > target:
			hi = mid
		default:
			return mid
		}
	}
	panic("graph: asymmetric CSR — reverse edge missing")
}

// forDegreeChunks runs body(u) for every vertex u in [0, len(off)-1), fanned
// out over degree-weighted contiguous chunks (AppendRangeWorkChunks) claimed
// dynamically — the builder-side twin of the traversal kernels' degree-aware
// frontier scheduling.
func forDegreeChunks(off []int64, p int, body func(u int)) {
	n := len(off) - 1
	bounds := AppendRangeWorkChunks(off, WorkGrain(off[n]+int64(n), p, buildGrainFloor), nil)
	parallel.ForDynamic(0, len(bounds), p, 1, func(ci int) {
		lo := 0
		if ci > 0 {
			lo = int(bounds[ci-1])
		}
		for u := lo; u < int(bounds[ci]); u++ {
			body(u)
		}
	})
}

// prefixInPlace turns per-index weights into inclusive prefix sums:
// a[0] is preserved (must be 0), a[i+1] becomes a[0]+w(0)+...+w(i) where
// w(i) was stored in a[i+1]. Large arrays scan in parallel blocks.
func prefixInPlace(a []int64, p int) {
	n := len(a) - 1
	if p <= 1 || n < 1<<15 {
		for i := 0; i < n; i++ {
			a[i+1] += a[i]
		}
		return
	}
	partial := make([]int64, p+1)
	parallel.Run(p, func(w int) {
		lo, hi := blockRange(n, p, w)
		var s int64
		for i := lo; i < hi; i++ {
			s += a[i+1]
		}
		partial[w+1] = s
	})
	for w := 0; w < p; w++ {
		partial[w+1] += partial[w]
	}
	parallel.Run(p, func(w int) {
		lo, hi := blockRange(n, p, w)
		run := partial[w]
		for i := lo; i < hi; i++ {
			run += a[i+1]
			a[i+1] = run
		}
	})
}

// blockRange is the [lo, hi) share of worker w under an even static split of
// [0, n) into p blocks.
func blockRange(n, p, w int) (int, int) {
	return w * n / p, (w + 1) * n / p
}

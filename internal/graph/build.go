package graph

import (
	"runtime"
	"sort"
	"sync"
)

// Edge is one directed edge (or one undirected edge given as an ordered pair)
// in a builder's edge list.
type Edge struct {
	U, V V
}

// BuildDirected constructs a Directed graph over n vertices from an edge
// list. Self-loops are dropped and parallel edges deduplicated; adjacency
// lists come out sorted. Endpoints must be < n.
func BuildDirected(n int, edges []Edge) *Directed {
	outOff, outAdj := buildCSR(n, edges, false)
	inOff, inAdj := buildCSR(n, edges, true)
	return &Directed{n: n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
}

// BuildUndirected constructs an Undirected graph over n vertices. Each input
// edge {u,v} is stored in both adjacency lists regardless of the order given;
// duplicates (including a pair given in both orders) collapse to one edge.
// Self-loops are dropped.
func BuildUndirected(n int, edges []Edge) *Undirected {
	sym := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		sym = append(sym, e, Edge{e.V, e.U})
	}
	off, adj := buildCSR(n, sym, false)
	return finishUndirected(n, off, adj)
}

// Undirect converts a directed graph to the undirected graph used by CC,
// BiCC and BgCC, per paper §6.1: create a reverse edge for any vertex pair
// that shares only one directed edge, keeping the vertex count unchanged.
func Undirect(g *Directed) *Undirected {
	edges := make([]Edge, 0, 2*len(g.outAdj))
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(V(u)) {
			if V(u) == v {
				continue
			}
			edges = append(edges, Edge{V(u), v}, Edge{v, V(u)})
		}
	}
	off, adj := buildCSR(g.n, edges, false)
	return finishUndirected(g.n, off, adj)
}

// buildCSR counts, sorts and dedups an edge list into CSR arrays. If reverse
// is true the edges are interpreted as (V -> U), producing the in-CSR.
func buildCSR(n int, edges []Edge, reverse bool) ([]int64, []V) {
	deg := make([]int64, n+1)
	src := func(e Edge) V { return e.U }
	dst := func(e Edge) V { return e.V }
	if reverse {
		src, dst = dst, src
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[src(e)+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	off := deg // now prefix sums; off[u+1] still the insertion cursor start
	adj := make([]V, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		s := src(e)
		adj[cursor[s]] = dst(e)
		cursor[s]++
	}
	// Sort each adjacency list in parallel (the builder's dominant cost on
	// large inputs), then dedup and compact serially.
	sortSegments(n, off, adj)
	newOff := make([]int64, n+1)
	w := int64(0)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		seg := adj[lo:hi]
		newOff[u] = w
		var prev V
		first := true
		for _, v := range seg {
			if first || v != prev {
				adj[w] = v
				w++
				prev = v
				first = false
			}
		}
	}
	newOff[n] = w
	return newOff, adj[:w:w]
}

// sortSegments sorts every vertex's adjacency segment, fanning the segments
// out over the available CPUs. The graph package avoids a dependency on the
// parallel package (which sits above it), so the worker loop is inlined.
func sortSegments(n int, off []int64, adj []V) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 1024 {
		for u := 0; u < n; u++ {
			seg := adj[off[u]:off[u+1]]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for u := lo; u < hi; u++ {
				seg := adj[off[u]:off[u+1]]
				sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			}
		}(w)
	}
	wg.Wait()
}

// finishUndirected computes the mate-slot and dense-edge-id indexes for a
// symmetric, sorted, deduplicated CSR.
func finishUndirected(n int, off []int64, adj []V) *Undirected {
	mate := make([]int64, len(adj))
	eid := make([]int64, len(adj))
	var m int64
	for u := 0; u < n; u++ {
		for s := off[u]; s < off[u+1]; s++ {
			v := adj[s]
			if V(u) < v {
				// Find the reverse slot by binary search in v's list.
				r := searchSlot(off, adj, v, V(u))
				mate[s] = r
				mate[r] = s
				eid[s] = m
				eid[r] = m
				m++
			}
		}
	}
	return &Undirected{n: n, off: off, adj: adj, mate: mate, eid: eid, m: m}
}

func searchSlot(off []int64, adj []V, u, target V) int64 {
	lo, hi := off[u], off[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case adj[mid] < target:
			lo = mid + 1
		case adj[mid] > target:
			hi = mid
		default:
			return mid
		}
	}
	panic("graph: asymmetric CSR — reverse edge missing")
}

package graph

import (
	"slices"

	"aquila/internal/parallel"
)

// Permutation is a vertex relabeling: Perm maps original ids to new ids and
// Inv maps new ids back to original ids (Inv[Perm[v]] == v). Connectivity
// kernels run on the relabeled graph for locality; results are mapped back
// through Inv so callers never observe the new ids.
type Permutation struct {
	Perm []V // original id -> new id
	Inv  []V // new id -> original id
}

// NumVertices returns the size of the relabeled id space.
func (p *Permutation) NumVertices() int { return len(p.Perm) }

// IdentityPermutation returns the permutation that leaves ids unchanged.
// Useful as a neutral element in ablations.
func IdentityPermutation(n int) *Permutation {
	perm := make([]V, n)
	for v := range perm {
		perm[v] = V(v)
	}
	inv := make([]V, n)
	copy(inv, perm)
	return &Permutation{Perm: perm, Inv: inv}
}

// DegreeOrder returns the degree-descending ("hub-first") permutation: vertex
// ranks are assigned by decreasing degree, ties broken by original id. High-
// degree hubs cluster at the front of the CSR, so the frontier-heavy early
// levels of BFS and the hub-biased hooking of label propagation touch a
// compact prefix of memory.
func DegreeOrder(g *Undirected, threads int) *Permutation {
	return degreeOrder(g.n, func(u V) int64 { return g.off[u+1] - g.off[u] }, threads)
}

// DegreeOrderDirected is DegreeOrder for directed graphs, ranking by
// out-degree + in-degree (total touch count across both CSRs).
func DegreeOrderDirected(g *Directed, threads int) *Permutation {
	return degreeOrder(g.n, func(u V) int64 {
		return (g.outOff[u+1] - g.outOff[u]) + (g.inOff[u+1] - g.inOff[u])
	}, threads)
}

func degreeOrder(n int, degree func(V) int64, threads int) *Permutation {
	order := make([]V, n)
	for v := range order {
		order[v] = V(v)
	}
	slices.SortFunc(order, func(a, b V) int {
		da, db := degree(a), degree(b)
		switch {
		case da > db:
			return -1
		case da < db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	// order is new->orig; invert to Perm.
	perm := make([]V, n)
	parallel.For(0, n, parallel.Threads(threads), func(i int) {
		perm[order[i]] = V(i)
	})
	return &Permutation{Perm: perm, Inv: order}
}

// BFSOrder returns a BFS ("hub-clustered") visiting order: components are
// seeded from unvisited vertices in degree-descending order, and each
// component is laid out breadth-first from its hub. Neighbors that are close
// in the traversal — exactly the vertices connectivity kernels touch
// together — land on nearby CSR rows, the classic locality layout used by
// GBBS-style systems.
//
// The traversal itself is serial (layout quality, not layout speed, is the
// point of a one-time preprocessing pass); only the rank inversion runs on
// the pool.
func BFSOrder(g *Undirected, threads int) *Permutation {
	n := g.n
	seeds := degreeOrder(n, func(u V) int64 { return g.off[u+1] - g.off[u] }, threads).Inv
	inv := make([]V, 0, n)
	visited := make([]bool, n)
	queue := make([]V, 0, n)
	for _, root := range seeds {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inv = append(inv, u)
			for _, v := range g.adj[g.off[u]:g.off[u+1]] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	perm := make([]V, n)
	parallel.For(0, n, parallel.Threads(threads), func(i int) {
		perm[inv[i]] = V(i)
	})
	return &Permutation{Perm: perm, Inv: inv}
}

// BFSOrderDirected is BFSOrder over a directed graph's underlying undirected
// structure: the traversal follows both out- and in-arcs so a weakly
// connected component stays contiguous in the layout.
func BFSOrderDirected(g *Directed, threads int) *Permutation {
	n := g.n
	seeds := degreeOrder(n, func(u V) int64 {
		return (g.outOff[u+1] - g.outOff[u]) + (g.inOff[u+1] - g.inOff[u])
	}, threads).Inv
	inv := make([]V, 0, n)
	visited := make([]bool, n)
	queue := make([]V, 0, n)
	for _, root := range seeds {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inv = append(inv, u)
			for _, v := range g.outAdj[g.outOff[u]:g.outOff[u+1]] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
			for _, v := range g.inAdj[g.inOff[u]:g.inOff[u+1]] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	perm := make([]V, n)
	parallel.For(0, n, parallel.Threads(threads), func(i int) {
		perm[inv[i]] = V(i)
	})
	return &Permutation{Perm: perm, Inv: inv}
}

// ApplyUndirected builds the relabeled copy of g under p using the parallel
// builder: edge {u,v} becomes {Perm[u],Perm[v]}. The result has identical
// structure (same degree multiset, same components) with permuted ids and its
// own dense edge-id space; use EdgeIDMap to translate edge-indexed results.
func (p *Permutation) ApplyUndirected(g *Undirected, threads int) *Undirected {
	edges := make([]Edge, g.m)
	th := parallel.Threads(threads)
	parallel.ForBlocks(0, g.n, th, func(lo, hi, _ int) {
		for u := lo; u < hi; u++ {
			for s := g.off[u]; s < g.off[u+1]; s++ {
				v := g.adj[s]
				if V(u) < v {
					edges[g.eid[s]] = Edge{p.Perm[u], p.Perm[v]}
				}
			}
		}
	})
	return BuildUndirectedThreads(g.n, edges, threads)
}

// ApplyDirected builds the relabeled copy of g under p using the parallel
// builder: arc (u,v) becomes (Perm[u],Perm[v]).
func (p *Permutation) ApplyDirected(g *Directed, threads int) *Directed {
	edges := make([]Edge, len(g.outAdj))
	th := parallel.Threads(threads)
	parallel.ForBlocks(0, g.n, th, func(lo, hi, _ int) {
		for u := lo; u < hi; u++ {
			for s := g.outOff[u]; s < g.outOff[u+1]; s++ {
				edges[s] = Edge{p.Perm[u], p.Perm[g.outAdj[s]]}
			}
		}
	})
	return BuildDirectedThreads(g.n, edges, threads)
}

// EdgeIDMap returns the translation from g's dense edge ids to the ids of the
// relabeled graph rg = p.ApplyUndirected(g): for original edge {u,v} with id
// k, out[k] is rg's id of {Perm[u],Perm[v]}. Used to map edge-indexed results
// (bridge flags, BiCC block assignments) computed on rg back to g's id space.
func (p *Permutation) EdgeIDMap(g, rg *Undirected, threads int) []int64 {
	out := make([]int64, g.m)
	parallel.ForBlocks(0, g.n, parallel.Threads(threads), func(lo, hi, _ int) {
		for u := lo; u < hi; u++ {
			for s := g.off[u]; s < g.off[u+1]; s++ {
				v := g.adj[s]
				if V(u) < v {
					out[g.eid[s]] = rg.EdgeIDOf(p.Perm[u], p.Perm[v])
				}
			}
		}
	})
	return out
}

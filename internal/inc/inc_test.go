package inc

import (
	"testing"

	"aquila/internal/baseline/serialdfs"
	"aquila/internal/cc"
	"aquila/internal/gen"
	"aquila/internal/graph"
	"aquila/internal/verify"
)

func TestSingletonsBasics(t *testing.T) {
	s := NewSingletons(5)
	if s.ComponentCount() != 5 || s.NumVertices() != 5 {
		t.Fatalf("fresh state: %d components over %d vertices", s.ComponentCount(), s.NumVertices())
	}
	if s.Connected(0, 1) {
		t.Errorf("fresh vertices connected")
	}
	merged := s.Apply([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 2)
	if merged != 2 {
		t.Errorf("merged = %d, want 2", merged)
	}
	if s.ComponentCount() != 3 {
		t.Errorf("components = %d, want 3", s.ComponentCount())
	}
	if !s.Connected(0, 2) || s.Connected(0, 3) {
		t.Errorf("connectivity wrong after batch")
	}
	if s.Find(2) != 0 {
		t.Errorf("Find(2) = %d, want canonical 0", s.Find(2))
	}
}

func TestApplyIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	s := NewSingletons(4)
	batch := []graph.Edge{
		{U: 2, V: 2}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}, {U: 3, V: 3},
	}
	if merged := s.Apply(batch, 4); merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
	if merged := s.Apply(batch, 1); merged != 0 {
		t.Errorf("replayed batch merged %d, want 0", merged)
	}
	if s.ComponentCount() != 3 {
		t.Errorf("components = %d, want 3", s.ComponentCount())
	}
}

func TestApplyCountsExactlyOnceInParallel(t *testing.T) {
	// A duplicate-heavy batch applied with many workers must count each
	// component merge exactly once.
	const n = 2000
	s := NewSingletons(n)
	var batch []graph.Edge
	for rep := 0; rep < 8; rep++ {
		for i := 0; i+1 < n; i++ {
			batch = append(batch, graph.Edge{U: graph.V(i), V: graph.V(i + 1)})
		}
	}
	if merged := s.Apply(batch, 8); merged != n-1 {
		t.Fatalf("merged = %d, want %d", merged, n-1)
	}
	if s.ComponentCount() != 1 {
		t.Fatalf("components = %d, want 1", s.ComponentCount())
	}
}

func TestFromLabelsSeedsStaticDecomposition(t *testing.T) {
	g := gen.PaperExampleUndirected()
	res := cc.Run(g, cc.Options{Threads: 2})
	s := FromLabels(res.Label, res.NumComponents)
	if s.ComponentCount() != res.NumComponents {
		t.Fatalf("seeded count = %d, want %d", s.ComponentCount(), res.NumComponents)
	}
	if err := verify.SamePartition(s.Labels(), res.Label); err != nil {
		t.Fatalf("seeded labels: %v", err)
	}
	// Bridge the paper graph's three components.
	if merged := s.Apply([]graph.Edge{{U: 0, V: 8}, {U: 8, V: 12}}, 1); merged != 2 {
		t.Errorf("merged = %d, want 2", merged)
	}
	if s.ComponentCount() != 1 || !s.Connected(1, 13) {
		t.Errorf("paper graph not fully merged")
	}
}

func TestFromLabelsRejectsNonCanonical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("FromLabels accepted a non-canonical labeling")
		}
	}()
	FromLabels([]uint32{1, 1}, 1) // label 1 is not the minimum member
}

func TestCCResultMatchesOracle(t *testing.T) {
	for seed := uint64(7); seed < 10; seed++ {
		g := gen.RandomUndirected(300, 500, seed)
		res := cc.Run(g, cc.Options{Threads: 2})
		s := FromLabels(res.Label, res.NumComponents)

		// Grow the graph with fresh random edges and keep an oracle edge list.
		edges := endpointEdges(g)
		rng := gen.NewRNG(seed * 31)
		var batch []graph.Edge
		for i := 0; i < 200; i++ {
			batch = append(batch, graph.Edge{U: graph.V(rng.Intn(300)), V: graph.V(rng.Intn(300))})
		}
		s.Apply(batch, 3)
		edges = append(edges, batch...)

		truth := serialdfs.CC(graph.BuildUndirected(300, edges))
		got := s.CCResult(2)
		if err := verify.SamePartition(got.Label, truth); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.NumComponents != distinctCount(truth) {
			t.Fatalf("seed %d: NumComponents = %d, want %d", seed, got.NumComponents, distinctCount(truth))
		}
		if got.NumComponents != s.ComponentCount() {
			t.Fatalf("seed %d: census count %d != counter %d", seed, got.NumComponents, s.ComponentCount())
		}
		if got.Sizes[got.LargestLabel] != got.LargestSize {
			t.Fatalf("seed %d: census largest inconsistent", seed)
		}
		total := 0
		for _, sz := range got.Sizes {
			total += sz
		}
		if total != 300 {
			t.Fatalf("seed %d: sizes sum to %d, want 300", seed, total)
		}
	}
}

func TestEmptyState(t *testing.T) {
	s := NewSingletons(0)
	if s.Apply(nil, 4) != 0 || s.ComponentCount() != 0 {
		t.Errorf("empty state misbehaves")
	}
	res := s.CCResult(2)
	if res.NumComponents != 0 || len(res.Label) != 0 {
		t.Errorf("empty CCResult = %+v", res)
	}
}

// endpointEdges extracts one (u,v) edge per dense edge id of g.
func endpointEdges(g *graph.Undirected) []graph.Edge {
	eps := g.EdgeEndpoints()
	out := make([]graph.Edge, 0, len(eps))
	for _, ep := range eps {
		out = append(out, graph.Edge{U: ep[0], V: ep[1]})
	}
	return out
}

func distinctCount(label []uint32) int {
	seen := make(map[uint32]bool)
	for _, l := range label {
		seen[l] = true
	}
	return len(seen)
}

// Package inc implements Aquila's incremental-connectivity layer: a
// concurrent union-find over the vertex set that absorbs batches of edge
// insertions in parallel and answers connectivity queries without rerunning
// the static decomposition pipeline — the ConnectIt observation (Dhulipala
// et al., 2020) that union-find connectivity extends cleanly to incremental
// edge batches, applied to the paper's query engine.
//
// A State is seeded from a static CC labeling (each vertex's parent is its
// component's minimum member), so every query right after seeding costs a
// single pointer chase. Batches union their endpoint pairs with the CAS
// hook-under-smaller idiom of internal/unionfind, which keeps labels
// canonical — the representative of every component remains its minimum
// vertex id, exactly the form cc.Run produces — and guarantees the CAS loops
// terminate (roots only ever decrease). Union by rank would give marginally
// shallower trees but destroys canonical labels, so Aquila deliberately
// trades it for deterministic minimum-id representatives; path halving in
// Find keeps trees flat in practice.
//
// Edge deletions are out of scope: connectivity only ever grows under a
// State, which is what makes answering queries straight from the union-find
// sound (once connected, never disconnected). Callers that need deletions
// rebuild via the static pipeline instead.
package inc

import (
	"fmt"
	"sync/atomic"

	"aquila/internal/cc"
	"aquila/internal/graph"
	"aquila/internal/parallel"
	"aquila/internal/unionfind"
)

// State is an incremental connectivity structure over a fixed vertex set.
// Connected, ComponentCount and Labels are safe to call concurrently with
// Apply; Apply itself may be called from one goroutine at a time (writers
// serialize, readers don't — the Engine's locking already provides this).
type State struct {
	n          int
	uf         *unionfind.Concurrent
	components atomic.Int64
}

// NewSingletons returns a State over n isolated vertices.
func NewSingletons(n int) *State {
	s := &State{n: n, uf: unionfind.NewConcurrent(n)}
	s.components.Store(int64(n))
	return s
}

// FromLabels seeds a State from a canonical CC labeling (label[v] is the
// minimum vertex id of v's component, as cc.Run and serialdfs.CC produce)
// and its component count. It panics on a non-canonical labeling, since a
// silently mis-seeded union-find would corrupt every later answer.
func FromLabels(label []uint32, numComponents int) *State {
	for v, l := range label {
		if int(l) >= len(label) || label[l] != l || l > uint32(v) {
			panic(fmt.Sprintf("inc: non-canonical label %d at vertex %d", l, v))
		}
	}
	s := &State{n: len(label), uf: unionfind.SeedConcurrent(label)}
	s.components.Store(int64(numComponents))
	return s
}

// NumVertices returns the size of the vertex set.
func (s *State) NumVertices() int { return s.n }

// Apply absorbs a batch of undirected edge insertions using up to threads
// workers and returns the number of component merges the batch caused.
// Self-loops are ignored; duplicate edges (within the batch or against
// earlier batches) are harmless and merge nothing.
func (s *State) Apply(batch []graph.Edge, threads int) int {
	p := parallel.Threads(threads)
	var merged int64
	parallel.ForBlocks(0, len(batch), p, func(lo, hi, _ int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			e := batch[i]
			if e.U == e.V {
				continue
			}
			if _, m := s.uf.Unite(e.U, e.V); m {
				local++
			}
		}
		if local != 0 {
			atomic.AddInt64(&merged, local)
		}
	})
	s.components.Add(-merged)
	return int(merged)
}

// Connected reports whether u and v are currently in one component. It is
// safe concurrently with Apply; the answer is a linearization-point snapshot
// and monotone (once true, always true).
func (s *State) Connected(u, v graph.V) bool { return s.uf.Same(u, v) }

// Find returns the current canonical representative (minimum member) of v's
// component.
func (s *State) Find(v graph.V) graph.V { return s.uf.Find(v) }

// ComponentCount returns the number of components. Concurrent with an Apply
// in flight it reports the count as of the last completed batch; between
// batches it is exact.
func (s *State) ComponentCount() int { return int(s.components.Load()) }

// Labels flattens the structure into a fresh canonical label slice (minimum
// member per component). Call between batches for an exact snapshot.
func (s *State) Labels() []uint32 { return s.uf.Labels() }

// CCResult materializes the incremental state as a complete cc.Result — the
// same shape the static pipeline returns, derived in O(|V|) from the
// union-find instead of by traversal. Stats are zero: no traversal ran.
func (s *State) CCResult(threads int) *cc.Result {
	p := parallel.Threads(threads)
	label := s.uf.Labels()
	res := &cc.Result{Label: label, Sizes: make(map[uint32]int)}
	counts := make([]int32, s.n)
	parallel.ForBlocks(0, s.n, p, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			parallel.AddI32(&counts[label[v]], 1)
		}
	})
	for l, c := range counts {
		if c > 0 {
			res.Sizes[uint32(l)] = int(c)
			res.NumComponents++
			if int(c) > res.LargestSize {
				res.LargestSize = int(c)
				res.LargestLabel = uint32(l)
			}
		}
	}
	return res
}

package inc

// FuzzIncMatchesOracle decodes the fuzz input as an update script — a vertex
// count followed by byte-pair edges, flushed to the incremental state in
// batches — and cross-checks every intermediate state against the serial DFS
// oracle. Any divergence (partition, count, census, pairwise connectivity)
// crashes the fuzzer.

import (
	"testing"

	"aquila/internal/baseline/serialdfs"
	"aquila/internal/graph"
	"aquila/internal/verify"
)

func FuzzIncMatchesOracle(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3})        // chain
	f.Add([]byte{4, 0, 0, 1, 1, 2, 2, 3, 3})  // self-loops mixed in
	f.Add([]byte{16, 0, 1, 0, 1, 0, 1, 5, 9}) // duplicates
	f.Add([]byte{60, 1, 2, 3, 4, 5, 6, 1, 6, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0])%60 + 4
		st := NewSingletons(n)
		var all []graph.Edge

		check := func() {
			truth := serialdfs.CC(graph.BuildUndirected(n, all))
			if err := verify.SamePartition(st.Labels(), truth); err != nil {
				t.Fatalf("partition diverged: %v", err)
			}
			if got, want := st.ComponentCount(), distinctCount(truth); got != want {
				t.Fatalf("count = %d, oracle %d", got, want)
			}
			res := st.CCResult(2)
			if res.NumComponents != distinctCount(truth) {
				t.Fatalf("census count = %d, oracle %d", res.NumComponents, distinctCount(truth))
			}
			if res.LargestSize != largestClass(truth) {
				t.Fatalf("largest = %d, oracle %d", res.LargestSize, largestClass(truth))
			}
		}

		var batch []graph.Edge
		for i := 1; i+1 < len(data); i += 2 {
			u := graph.V(int(data[i]) % n)
			v := graph.V(int(data[i+1]) % n)
			batch = append(batch, graph.Edge{U: u, V: v})
			// Flush on a data-dependent boundary so batch shapes vary.
			if len(batch) >= 1+int(data[i])%7 {
				st.Apply(batch, 1+int(data[i+1])%4)
				all = append(all, batch...)
				batch = batch[:0]
				check()
			}
		}
		if len(batch) > 0 {
			st.Apply(batch, 2)
			all = append(all, batch...)
		}
		check()
	})
}

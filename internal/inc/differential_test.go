package inc

// Differential-testing harness: randomized update sequences interleaving
// batch insertions with connectivity queries, cross-checking every observed
// state against a rebuild-from-scratch serialdfs.CC oracle. The harness
// runs over the paper's three seed graph classes (uniform random, RMAT,
// social) plus adversarial hand-built schedules — all-singletons collapsing
// into one giant merge, duplicate-saturated batches, self-loop-only batches.

import (
	"testing"

	"aquila/internal/baseline/serialdfs"
	"aquila/internal/cc"
	"aquila/internal/gen"
	"aquila/internal/graph"
	"aquila/internal/verify"
)

// oracle is the ground truth: the full edge list, recomputed from scratch on
// every check by the serial DFS baseline.
type oracle struct {
	n     int
	edges []graph.Edge
}

func (o *oracle) labels() []uint32 {
	return serialdfs.CC(graph.BuildUndirected(o.n, o.edges))
}

// differentialRun drives one randomized interleaving of batches and queries
// against st and o, returning the number of interleaved steps executed.
// Updates are drawn from the pending stream first (graph growth), mixed with
// random noise edges (duplicates, self-loops, already-connected pairs).
func differentialRun(t *testing.T, st *State, o *oracle, pending []graph.Edge, seed uint64, steps int) int {
	t.Helper()
	rng := gen.NewRNG(seed)
	cursor := 0
	done := 0
	for i := 0; i < steps; i++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // apply a batch
			k := 1 + rng.Intn(32)
			var batch []graph.Edge
			for j := 0; j < k && cursor < len(pending); j++ {
				batch = append(batch, pending[cursor])
				cursor++
			}
			// Noise: random edges, occasional duplicates and self-loops.
			for j := rng.Intn(8); j > 0; j-- {
				u := graph.V(rng.Intn(o.n))
				v := graph.V(rng.Intn(o.n))
				if rng.Intn(10) == 0 {
					v = u // self-loop
				}
				batch = append(batch, graph.Edge{U: u, V: v})
				if rng.Intn(4) == 0 {
					batch = append(batch, graph.Edge{U: v, V: u}) // duplicate, reversed
				}
			}
			st.Apply(batch, 1+rng.Intn(4))
			o.edges = append(o.edges, batch...)
		case 3: // pairwise Connected queries
			lab := o.labels()
			for j := 0; j < 16; j++ {
				u := graph.V(rng.Intn(o.n))
				v := graph.V(rng.Intn(o.n))
				if got, want := st.Connected(u, v), lab[u] == lab[v]; got != want {
					t.Fatalf("step %d: Connected(%d,%d) = %v, oracle says %v", i, u, v, got, want)
				}
			}
		case 4: // full-state check: partition, count, census
			lab := o.labels()
			if err := verify.SamePartition(st.Labels(), lab); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			want := distinctCount(lab)
			if got := st.ComponentCount(); got != want {
				t.Fatalf("step %d: ComponentCount = %d, oracle says %d", i, got, want)
			}
			res := st.CCResult(2)
			if res.NumComponents != want {
				t.Fatalf("step %d: census count = %d, oracle says %d", i, res.NumComponents, want)
			}
			if wantLargest := largestClass(lab); res.LargestSize != wantLargest {
				t.Fatalf("step %d: LargestSize = %d, oracle says %d", i, res.LargestSize, wantLargest)
			}
		}
		done++
	}
	return done
}

// seedClassState builds the harness start state for one graph class: the
// class graph's shuffled edges are split into a base prefix (statically
// decomposed, seeding the union-find) and a pending suffix (replayed as the
// update stream).
func seedClassState(t *testing.T, d *graph.Directed, seed uint64) (*State, *oracle, []graph.Edge) {
	t.Helper()
	u := graph.Undirect(d)
	edges := endpointEdges(u)
	rng := gen.NewRNG(seed)
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	base := edges[:len(edges)/2]
	pending := edges[len(edges)/2:]
	bg := graph.BuildUndirected(u.NumVertices(), base)
	res := cc.Run(bg, cc.Options{Threads: 2})
	st := FromLabels(res.Label, res.NumComponents)
	o := &oracle{n: u.NumVertices(), edges: append([]graph.Edge(nil), base...)}
	return st, o, pending
}

// TestDifferentialAgainstOracle runs ≥1000 randomized update/query
// interleavings per seed graph class (random, RMAT, social), each state
// cross-checked against the serial rebuild oracle.
func TestDifferentialAgainstOracle(t *testing.T) {
	classes := []struct {
		name string
		make func(seed uint64) *graph.Directed
	}{
		{"random", func(seed uint64) *graph.Directed { return gen.Random(300, 900, seed) }},
		{"rmat", func(seed uint64) *graph.Directed { return gen.RMAT(8, 4, seed) }},
		{"social", func(seed uint64) *graph.Directed {
			return gen.Social(gen.SocialConfig{
				GiantVertices: 200, GiantAvgDeg: 4,
				SmallComps: 20, SmallMaxSize: 8, Isolated: 15,
				MutualFrac: 0.3, Seed: seed,
			})
		}},
	}
	seeds, steps := 4, 260
	if testing.Short() {
		seeds, steps = 2, 130
	}
	for _, class := range classes {
		t.Run(class.name, func(t *testing.T) {
			total := 0
			for s := 0; s < seeds; s++ {
				seed := uint64(100*s) + 11
				st, o, pending := seedClassState(t, class.make(seed), seed)
				total += differentialRun(t, st, o, pending, seed^0xD1FF, steps)
			}
			want := 1000
			if testing.Short() {
				want = 250
			}
			if total < want {
				t.Fatalf("only %d interleavings, want >= %d", total, want)
			}
		})
	}
}

// TestDifferentialSingletonsToGiantMerge is the adversarial schedule the
// union-find hates most: n isolated vertices first joined into many tiny
// chains, then one batch merges everything through a single hub.
func TestDifferentialSingletonsToGiantMerge(t *testing.T) {
	const n = 600
	st := NewSingletons(n)
	o := &oracle{n: n}

	// Tiny chains of 3: vertices {3k, 3k+1, 3k+2}.
	var chains []graph.Edge
	for k := 0; 3*k+2 < n; k++ {
		chains = append(chains,
			graph.Edge{U: graph.V(3 * k), V: graph.V(3*k + 1)},
			graph.Edge{U: graph.V(3*k + 1), V: graph.V(3*k + 2)})
	}
	st.Apply(chains, 4)
	o.edges = append(o.edges, chains...)
	if err := verify.SamePartition(st.Labels(), o.labels()); err != nil {
		t.Fatalf("after chains: %v", err)
	}
	if got, want := st.ComponentCount(), distinctCount(o.labels()); got != want {
		t.Fatalf("after chains: count = %d, want %d", got, want)
	}

	// One giant merge: a star batch through vertex 0 touching every chain.
	var star []graph.Edge
	for k := 0; 3*k+2 < n; k++ {
		star = append(star, graph.Edge{U: 0, V: graph.V(3*k + 2)})
	}
	merged := st.Apply(star, 8)
	o.edges = append(o.edges, star...)
	if err := verify.SamePartition(st.Labels(), o.labels()); err != nil {
		t.Fatalf("after giant merge: %v", err)
	}
	if want := distinctCount(o.labels()); st.ComponentCount() != want {
		t.Fatalf("after giant merge: count = %d, want %d", st.ComponentCount(), want)
	}
	if merged == 0 {
		t.Fatalf("giant merge reported no merges")
	}
}

// TestDifferentialRepeatedDuplicates saturates the structure with the same
// batch over and over: only the first application may merge anything.
func TestDifferentialRepeatedDuplicates(t *testing.T) {
	const n = 64
	st := NewSingletons(n)
	o := &oracle{n: n}
	var batch []graph.Edge
	for i := 0; i+1 < n; i += 2 {
		batch = append(batch, graph.Edge{U: graph.V(i), V: graph.V(i + 1)})
	}
	first := st.Apply(batch, 4)
	o.edges = append(o.edges, batch...)
	if first != n/2 {
		t.Fatalf("first application merged %d, want %d", first, n/2)
	}
	for rep := 0; rep < 10; rep++ {
		if m := st.Apply(batch, 1+rep%4); m != 0 {
			t.Fatalf("replay %d merged %d, want 0", rep, m)
		}
		o.edges = append(o.edges, batch...)
		if err := verify.SamePartition(st.Labels(), o.labels()); err != nil {
			t.Fatalf("replay %d: %v", rep, err)
		}
	}
}

// TestDifferentialSelfLoopsOnly: self-loop batches change nothing.
func TestDifferentialSelfLoopsOnly(t *testing.T) {
	const n = 32
	st := NewSingletons(n)
	var batch []graph.Edge
	for i := 0; i < n; i++ {
		batch = append(batch, graph.Edge{U: graph.V(i), V: graph.V(i)})
	}
	if m := st.Apply(batch, 4); m != 0 {
		t.Fatalf("self-loop batch merged %d", m)
	}
	if st.ComponentCount() != n {
		t.Fatalf("count = %d, want %d", st.ComponentCount(), n)
	}
}

func largestClass(label []uint32) int {
	counts := make(map[uint32]int)
	best := 0
	for _, l := range label {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return best
}

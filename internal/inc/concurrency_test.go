package inc

// Concurrency tests: readers query Connected/ComponentCount lock-free while a
// writer applies batches. Run under `go test -race` these double as data-race
// detectors for the CAS-based union-find; the assertions check the
// insert-only monotonicity invariant — once two vertices are observed
// connected they can never be observed disconnected, and the component count
// never increases.

import (
	"sync"
	"sync/atomic"
	"testing"

	"aquila/internal/gen"
	"aquila/internal/graph"
)

func TestConcurrentReadersDuringApply(t *testing.T) {
	const (
		n       = 4000
		readers = 6
	)
	st := NewSingletons(n)

	// The writer applies a shuffled spanning chain in batches, ending with one
	// component. Readers poll pairs and remember which ones they saw connected.
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: graph.V(i), V: graph.V(i + 1)})
	}
	rng := gen.NewRNG(42)
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := gen.NewRNG(uint64(id)*977 + 1)
			seen := make(map[[2]graph.V]bool)
			lastCount := n + 1
			for !done.Load() {
				u := graph.V(rng.Intn(n))
				v := graph.V(rng.Intn(n))
				pair := [2]graph.V{u, v}
				if u > v {
					pair = [2]graph.V{v, u}
				}
				conn := st.Connected(u, v)
				if seen[pair] && !conn {
					errc <- "connected pair later observed disconnected"
					return
				}
				if conn {
					seen[pair] = true
				}
				if c := st.ComponentCount(); c > lastCount {
					errc <- "component count increased under insert-only updates"
					return
				} else {
					lastCount = c
				}
			}
		}(r)
	}

	const batchSize = 64
	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		st.Apply(edges[lo:hi], 4)
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}

	if st.ComponentCount() != 1 {
		t.Fatalf("final count = %d, want 1", st.ComponentCount())
	}
	if !st.Connected(0, n-1) {
		t.Fatalf("chain endpoints not connected after all batches")
	}
}

// TestConcurrentWritersAgree races several writers applying overlapping
// batches; the merged state must equal the union of everything applied, and
// the sum of reported merges must be exactly the number of component merges.
func TestConcurrentWritersAgree(t *testing.T) {
	const (
		n       = 3000
		writers = 4
	)
	st := NewSingletons(n)
	var total int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every writer applies the full chain, in its own order.
			rng := gen.NewRNG(uint64(w) * 131)
			edges := make([]graph.Edge, 0, n-1)
			for i := 0; i+1 < n; i++ {
				edges = append(edges, graph.Edge{U: graph.V(i), V: graph.V(i + 1)})
			}
			for i := len(edges) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				edges[i], edges[j] = edges[j], edges[i]
			}
			for lo := 0; lo < len(edges); lo += 50 {
				hi := lo + 50
				if hi > len(edges) {
					hi = len(edges)
				}
				atomic.AddInt64(&total, int64(st.Apply(edges[lo:hi], 2)))
			}
		}(w)
	}
	wg.Wait()
	if total != n-1 {
		t.Fatalf("merges summed to %d, want %d", total, n-1)
	}
	if st.ComponentCount() != 1 {
		t.Fatalf("count = %d, want 1", st.ComponentCount())
	}
	if st.Find(n-1) != 0 {
		t.Fatalf("canonical root of %d is %d, want 0", n-1, st.Find(n-1))
	}
}

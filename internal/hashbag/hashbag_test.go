package hashbag

import (
	"sort"
	"sync"
	"testing"

	"aquila/internal/graph"
)

// TestPutDrainMultiset: everything put comes back exactly once, across block
// boundaries and from multiple lanes.
func TestPutDrainMultiset(t *testing.T) {
	b := New(3)
	const per = 3*blockSize + 17 // spans several block publications per lane
	for i := 0; i < per; i++ {
		for w := 0; w < 3; w++ {
			b.Put(w, graph.V(w*per+i))
		}
	}
	if got := b.Len(); got != 3*per {
		t.Fatalf("Len = %d, want %d", got, 3*per)
	}
	out := b.Drain(nil)
	if len(out) != 3*per {
		t.Fatalf("Drain returned %d vertices, want %d", len(out), 3*per)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i, v := range out {
		if v != graph.V(i) {
			t.Fatalf("after sort, out[%d] = %d (lost or duplicated vertex)", i, v)
		}
	}
	if got := b.Len(); got != 0 {
		t.Fatalf("Len after Drain = %d, want 0", got)
	}
}

// TestDrainAppends: Drain appends to the destination it is given (the kernel
// reuses its frontier slice across rounds).
func TestDrainAppends(t *testing.T) {
	b := New(1)
	b.Put(0, 7)
	out := b.Drain([]graph.V{1, 2})
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 7 {
		t.Fatalf("Drain = %v, want [1 2 7]", out)
	}
	if out = b.Drain(out[:0]); len(out) != 0 {
		t.Fatalf("second Drain = %v, want empty", out)
	}
}

// TestBlocksRecycled: across rounds the bag reuses its published blocks
// instead of growing — steady-state rounds allocate nothing.
func TestBlocksRecycled(t *testing.T) {
	b := New(2)
	scratch := make([]graph.V, 0, 4*blockSize)
	warm := func() {
		for i := 0; i < 2*blockSize; i++ {
			b.Put(i&1, graph.V(i))
		}
		scratch = b.Drain(scratch[:0])
		if len(scratch) != 2*blockSize {
			t.Fatalf("round drained %d, want %d", len(scratch), 2*blockSize)
		}
	}
	warm() // populate the free list
	allocs := testing.AllocsPerRun(20, warm)
	// The free list makes warm rounds allocation-free; allow a stray
	// amortized growth of the block list itself.
	if allocs > 1 {
		t.Errorf("warm round allocated %.1f times, want ≤ 1", allocs)
	}
}

// TestContention is the race-gated stress: 8 workers concurrently insert
// disjoint ranges (CI runs this package under -race), and the drained result
// must be the exact union — no lost and no duplicated vertices, even while
// blocks are being published and recycled under the shared mutex.
func TestContention(t *testing.T) {
	const workers = 8
	const per = 5*blockSize + 311
	b := New(workers)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := w * per
				for i := 0; i < per; i++ {
					b.Put(w, graph.V(base+i))
				}
			}(w)
		}
		wg.Wait()
		out := b.Drain(nil)
		if len(out) != workers*per {
			t.Fatalf("round %d: drained %d vertices, want %d", round, len(out), workers*per)
		}
		seen := make([]bool, workers*per)
		for _, v := range out {
			if seen[v] {
				t.Fatalf("round %d: vertex %d duplicated", round, v)
			}
			seen[v] = true
		}
	}
}

// Package hashbag implements the concurrent frontier multiset behind the
// multi-reachability SCC rounds (the "parallel hash bag" of Wang et al.,
// PPoPP '23): workers insert discovered vertices through private fixed-size
// insertion blocks, and a full block is published wholesale into a shared
// resizable block list under one mutex acquisition — so the shared state is
// touched once per blockSize inserts, and a round needs no global sort or
// compact barrier: draining the next frontier is a concatenation of blocks
// that are already built.
//
// The bag is a multiset, not a set: callers that guard insertion with an
// atomic state transition (the multireach kernel inserts only when an atomic
// min actually lowers a vertex's owner) get near-exact occurrence counts, but
// nothing in the bag deduplicates, and monotone kernels tolerate the
// occasional re-expansion a duplicate causes.
package hashbag

import (
	"sync"

	"aquila/internal/graph"
)

// blockSize is the per-worker insertion-buffer capacity. One mutex
// acquisition publishes blockSize vertices, so lock traffic is amortized to
// a rounding error at frontier scale while blocks stay small enough that a
// near-empty frontier wastes little memory.
const blockSize = 1024

// Bag is the concurrent vertex multiset. Put is safe from the worker it was
// handed to (distinct workers never share an insertion block); Drain and Len
// must not run concurrently with Put — the kernel's round structure (expand,
// then drain, then expand again) provides that for free.
type Bag struct {
	mu   sync.Mutex
	full [][]graph.V // published blocks, in publication order
	free [][]graph.V // recycled empty blocks (len 0, cap blockSize)
	// active holds each worker's open insertion block (nil until first Put).
	active [][]graph.V
}

// New returns a bag with insertion lanes for the given worker count.
func New(workers int) *Bag {
	if workers < 1 {
		workers = 1
	}
	return &Bag{active: make([][]graph.V, workers)}
}

// Workers reports the number of insertion lanes.
func (b *Bag) Workers() int { return len(b.active) }

// Put appends v to worker's insertion block, publishing the block into the
// shared list when it fills.
func (b *Bag) Put(worker int, v graph.V) {
	blk := b.active[worker]
	if blk == nil {
		blk = b.takeBlock()
	}
	blk = append(blk, v)
	if len(blk) == blockSize {
		b.mu.Lock()
		b.full = append(b.full, blk)
		b.mu.Unlock()
		blk = nil
	}
	b.active[worker] = blk
}

// takeBlock hands out a recycled block, or a fresh one when none are free.
func (b *Bag) takeBlock() []graph.V {
	b.mu.Lock()
	var blk []graph.V
	if k := len(b.free); k > 0 {
		blk = b.free[k-1]
		b.free = b.free[:k-1]
	}
	b.mu.Unlock()
	if blk == nil {
		blk = make([]graph.V, 0, blockSize)
	}
	return blk
}

// Drain appends the bag's entire contents to dst, empties the bag, and
// recycles every block for the next round. It must not race with Put.
func (b *Bag) Drain(dst []graph.V) []graph.V {
	b.mu.Lock()
	for _, blk := range b.full {
		dst = append(dst, blk...)
		b.free = append(b.free, blk[:0])
	}
	b.full = b.full[:0]
	b.mu.Unlock()
	for w, blk := range b.active {
		if len(blk) > 0 {
			dst = append(dst, blk...)
			b.active[w] = blk[:0]
		}
	}
	return dst
}

// Len reports the number of queued vertices. Like Drain, it must not race
// with Put.
func (b *Bag) Len() int {
	b.mu.Lock()
	n := 0
	for _, blk := range b.full {
		n += len(blk)
	}
	b.mu.Unlock()
	for _, blk := range b.active {
		n += len(blk)
	}
	return n
}

package aquila

import (
	"math"
	"testing"

	"aquila/internal/gen"
)

func TestEngineCondensation(t *testing.T) {
	e := NewDirectedEngine(gen.PaperExample(), Options{Threads: 2})
	d, err := e.Condensation()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6", d.NumNodes())
	}
	// 5 and 0 share the big SCC; 1 reaches them but not back.
	if !d.Reachable(5, 0) || !d.Reachable(0, 5) {
		t.Errorf("big-SCC mutual reachability missing")
	}
	if !d.Reachable(1, 0) {
		t.Errorf("1 -> 5 -> 0 should be reachable")
	}
	if d.Reachable(0, 1) {
		t.Errorf("nothing reaches the pendant source 1")
	}
	d2, _ := e.Condensation()
	if d != d2 {
		t.Errorf("condensation not cached")
	}
	if _, err := NewEngine(gen.Cycle(4), Options{}).Condensation(); err != ErrNotDirected {
		t.Errorf("undirected condensation error = %v", err)
	}
}

func TestEngineBetweenness(t *testing.T) {
	// Path 0-1-2-3 as a directed chain; undirected view BC: [0,4,4,0].
	g := NewDirected(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	e := NewDirectedEngine(g, Options{Threads: 2})
	bc := e.BetweennessCentrality()
	want := []float64{0, 4, 4, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Errorf("BC[%d] = %v, want %v", v, bc[v], want[v])
		}
	}
	// Reduced and plain paths must agree.
	plain := NewDirectedEngine(g, Options{Threads: 2, DisablePartial: true}).BetweennessCentrality()
	for v := range want {
		if math.Abs(bc[v]-plain[v]) > 1e-9 {
			t.Errorf("reduced/plain disagree at %d: %v vs %v", v, bc[v], plain[v])
		}
	}
	if &bc[0] != &e.BetweennessCentrality()[0] {
		t.Errorf("betweenness not cached")
	}
}

func TestEngineCoreness(t *testing.T) {
	e := NewEngine(gen.Complete(5), Options{})
	for v, c := range e.Coreness() {
		if c != 4 {
			t.Errorf("K5 coreness[%d] = %d, want 4", v, c)
		}
	}
	e2 := NewDirectedEngine(gen.PaperExample(), Options{})
	core := e2.Coreness()
	// Pendants (1, 11, 12, 13) have coreness 1; cycle members 2.
	for _, v := range []V{1, 11, 12, 13} {
		if core[v] != 1 {
			t.Errorf("coreness[%d] = %d, want 1", v, core[v])
		}
	}
	for _, v := range []V{0, 2, 5, 8, 9} {
		if core[v] != 2 {
			t.Errorf("coreness[%d] = %d, want 2", v, core[v])
		}
	}
}

package aquila

import (
	"sync"

	"aquila/internal/bgcc"
	"aquila/internal/bicc"
	"aquila/internal/cc"
	"aquila/internal/graph"
	"aquila/internal/scc"
)

// Engine answers connectivity queries over one graph. It owns the query
// transformation (§3): partial-computation queries use dedicated fast paths,
// and complete decompositions are computed at most once and cached, so
// repeated queries are free.
//
// An Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	opt Options

	dir *Directed // nil for engines over undirected input
	und *Undirected

	mu           sync.Mutex
	ccRes        *cc.Result
	sccRes       *scc.Result
	biccRes      *bicc.Result
	bgccRes      *bgcc.Result
	apOnly       *bicc.Result
	brOnly       *bgcc.Result
	largestCC    *LargestResult
	condensation *Condensation
	betweenness  []float64
	coreness     []int32
}

// NewEngine returns an Engine over an undirected graph. SCC queries on an
// undirected engine degenerate to CC.
func NewEngine(g *Undirected, opt Options) *Engine {
	return &Engine{opt: opt, und: g}
}

// NewDirectedEngine returns an Engine over a directed graph. CC/BiCC/BgCC
// queries run over the undirected view (computed once, per paper §6.1); SCC
// and WCC use the directed graph.
func NewDirectedEngine(g *Directed, opt Options) *Engine {
	return &Engine{opt: opt, dir: g, und: graph.Undirect(g)}
}

// Undirected returns the (possibly derived) undirected view of the engine's
// graph.
func (e *Engine) Undirected() *Undirected { return e.und }

// Directed returns the directed graph, or nil for undirected engines.
func (e *Engine) Directed() *Directed { return e.dir }

func (e *Engine) ccOptions() cc.Options {
	return cc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
	}
}

func (e *Engine) sccOptions() scc.Options {
	return scc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
	}
}

func (e *Engine) biccOptions(apOnly bool) bicc.Options {
	return bicc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoSPO:      e.opt.DisableSPO,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
		APOnly:     apOnly,
	}
}

func (e *Engine) bgccOptions(bridgeOnly bool) bgcc.Options {
	return bgcc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoSPO:      e.opt.DisableSPO,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
		BridgeOnly: bridgeOnly,
	}
}

// ccComplete returns the cached complete CC decomposition, computing it once.
func (e *Engine) ccComplete() *cc.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ccRes == nil {
		e.ccRes = cc.Run(e.und, e.ccOptions())
	}
	return e.ccRes
}

func (e *Engine) sccComplete() *scc.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sccRes == nil {
		e.sccRes = scc.Run(e.dir, e.sccOptions())
	}
	return e.sccRes
}

func (e *Engine) biccComplete() *bicc.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.biccRes == nil {
		e.biccRes = bicc.Run(e.und, e.biccOptions(false))
	}
	return e.biccRes
}

func (e *Engine) bgccComplete() *bgcc.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bgccRes == nil {
		e.bgccRes = bgcc.Run(e.und, e.bgccOptions(false))
	}
	return e.bgccRes
}

package aquila

import (
	"context"
	"fmt"
	"sync"

	"aquila/internal/bfs"
	"aquila/internal/bgcc"
	"aquila/internal/bicc"
	"aquila/internal/cc"
	"aquila/internal/dyn"
	"aquila/internal/graph"
	"aquila/internal/inc"
	"aquila/internal/scc"
	"aquila/internal/stats"
)

// Engine answers connectivity queries over one graph. It owns the query
// transformation (§3): partial-computation queries use dedicated fast paths,
// and complete decompositions are computed at most once and cached, so
// repeated queries are free.
//
// An Engine also accepts batches of edge insertions via Apply, and mixed
// insert/delete batches via ApplyUpdates. Insertions are absorbed by an
// incremental union-find layer (internal/inc), so connectivity queries
// (Connected, CountCC, CC, IsConnected, LargestCC) never pay for a
// recomputation; queries that walk adjacency (SCC, BiCC, BgCC, coreness,
// betweenness, the partial-traversal fast paths) lazily fold the pending
// edges into fresh CSR graphs first. The first delete operation promotes the
// engine to a fully dynamic spanning forest (internal/dyn) that answers
// connectivity across deletions by replacement-edge search. When the
// accumulated delta crosses Options.RebuildThreshold, the engine falls back
// to the static cc.Run pipeline and reseeds from the fresh decomposition.
//
// # Concurrency contract
//
// An Engine is safe for concurrent use by multiple goroutines, including
// readers querying while another goroutine applies batches: answers are
// always consistent snapshots. Until the first delete op, connectivity is
// additionally monotone (once two vertices are connected, no later query
// disconnects them); dynamic mode trades that for deletions while keeping
// per-query consistency. The contract, precisely:
//
//   - e.mu guards the graph pointers, the incremental state, and every result
//     cache. Cache fills for complete decompositions run *under* e.mu, so a
//     query storm against a cold cache serializes behind one compute — the
//     Server layer (snapshot isolation + singleflight) is the scalable path
//     for that workload.
//   - Published graph pointers are immutable: Apply/materialize build fresh
//     CSRs and swap pointers, so a query that snapshotted e.und under the
//     lock can traverse it lock-free afterwards.
//   - Traversal scratches come from a shared race-clean ScratchPool (its own
//     mutex, never held together with e.mu), so partial fast paths running
//     outside the lock never contend with writers.
//   - Cache fills computed outside e.mu (the partial fast paths) re-validate
//     against cacheGen before storing, so a concurrent Apply's invalidation
//     is never overwritten by a stale fill.
type Engine struct {
	opt      Options
	directed bool // fixed at construction; e.dir is non-nil iff directed

	// dir/und are the compute graphs every kernel runs on. Under
	// Options.Reorder they hold the cache-aware relabeled CSR; perm is then
	// non-nil, origDir/origUnd keep the caller-id graphs, and eidMap
	// translates original dense edge ids to compute edge ids. Results are
	// mapped back to original ids at cache-fill time (see remap.go), so the
	// relabeling never leaks out of the engine.
	mu      sync.Mutex
	dir     *Directed // nil for engines over undirected input
	und     *Undirected
	perm    *graph.Permutation
	origDir *Directed
	origUnd *Undirected
	eidMap  []int64

	// Incremental state (nil until the first Apply). deltaUnd/deltaDir hold
	// inserted edges already unioned into inc but not yet materialized into
	// the CSR graphs; undSet/dirSet index them for duplicate detection.
	inc          *inc.State
	deltaUnd     []graph.Edge
	deltaDir     []graph.Edge
	undSet       map[[2]V]struct{}
	dirSet       map[[2]V]struct{}
	baseEdges    int64 // undirected edge count at the last (re)build
	sinceRebuild int64 // undirected edges inserted/deleted since then

	// Fully dynamic state (nil until the first delete op; see ApplyUpdates).
	// Once dyn is non-nil the incremental layer is retired: the forest is
	// the authoritative undirected edge set (self-loops are dropped, as
	// everywhere), and on directed engines dirSet holds the complete arc set
	// rather than a pending delta. dynDirty marks the CSR graphs stale
	// relative to the forest; materializeLocked rebuilds them lazily.
	dyn      *dyn.Forest
	dynDirty bool

	// reach pools traversal scratches for the partial fast paths
	// (IsConnected, LargestCC, ...), so query storms reuse warm buffers
	// instead of allocating per call. It has its own lock, not e.mu: queries
	// run their traversals outside the engine lock, and serving snapshots
	// share the same pool.
	reach bfs.ScratchPool

	// cacheGen increments (under e.mu) every time Apply or a rebuild
	// invalidates result caches. Fills computed outside e.mu compare it to
	// the value captured before computing and drop the fill on mismatch —
	// otherwise a slow stale fill could overwrite a newer invalidation.
	cacheGen uint64

	// ccRaw is the compute-space CC decomposition; its labels are min-id
	// canonical in compute space, which inc.FromLabels requires. ccRes is the
	// caller-facing (original-id) version — the same object when perm == nil.
	ccRaw        *cc.Result
	ccRes        *cc.Result
	sccRes       *scc.Result
	biccRes      *bicc.Result
	bgccRes      *bgcc.Result
	apOnly       *bicc.Result
	brOnly       *bgcc.Result
	largestCC    *LargestResult
	condensation *Condensation
	betweenness  []float64
	coreness     []int32
}

// NewEngine returns an Engine over an undirected graph. SCC queries on an
// undirected engine degenerate to CC. With Options.Reorder set, the engine
// builds a relabeled copy once here and computes on it from then on.
func NewEngine(g *Undirected, opt Options) *Engine {
	e := &Engine{opt: opt, und: g}
	if opt.Reorder != ReorderNone {
		switch opt.Reorder {
		case ReorderDegree:
			e.perm = graph.DegreeOrder(g, opt.Threads)
		default:
			e.perm = graph.BFSOrder(g, opt.Threads)
		}
		e.origUnd = g
		e.und = e.perm.ApplyUndirected(g, opt.Threads)
		e.eidMap = e.perm.EdgeIDMap(g, e.und, opt.Threads)
	}
	return e
}

// NewDirectedEngine returns an Engine over a directed graph. CC/BiCC/BgCC
// queries run over the undirected view (computed once, per paper §6.1); SCC
// and WCC use the directed graph. With Options.Reorder set, both views are
// relabeled (ranked by total degree across the two CSRs).
func NewDirectedEngine(g *Directed, opt Options) *Engine {
	e := &Engine{opt: opt, directed: true, dir: g, und: graph.Undirect(g)}
	if opt.Reorder != ReorderNone {
		switch opt.Reorder {
		case ReorderDegree:
			e.perm = graph.DegreeOrderDirected(g, opt.Threads)
		default:
			e.perm = graph.BFSOrderDirected(g, opt.Threads)
		}
		e.origDir, e.origUnd = g, e.und
		e.dir = e.perm.ApplyDirected(g, opt.Threads)
		e.und = e.perm.ApplyUndirected(e.origUnd, opt.Threads)
		e.eidMap = e.perm.EdgeIDMap(e.origUnd, e.und, opt.Threads)
	}
	return e
}

// mapV translates an original vertex id into the compute id space.
func (e *Engine) mapV(v V) V {
	if e.perm == nil {
		return v
	}
	return e.perm.Perm[v]
}

// unmapV translates a compute-space vertex id back to the original space.
func (e *Engine) unmapV(v V) V {
	if e.perm == nil {
		return v
	}
	return e.perm.Inv[v]
}

// Undirected returns the current (possibly derived) undirected view of the
// engine's graph in original vertex ids, materializing any pending Apply
// batches first.
func (e *Engine) Undirected() *Undirected {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.perm != nil {
		return e.origUnd
	}
	return e.und
}

// Directed returns the current directed graph in original vertex ids
// (materializing pending Apply batches), or nil for undirected engines.
func (e *Engine) Directed() *Directed {
	if !e.directed {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.perm != nil {
		return e.origDir
	}
	return e.dir
}

// undView snapshots the materialized undirected graph for use outside the
// engine lock. The snapshot is immutable: a later Apply swaps the pointer
// but never mutates a published graph.
func (e *Engine) undView() *Undirected {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	return e.und
}

// dirView snapshots the materialized directed graph (nil when undirected).
func (e *Engine) dirView() *Directed {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	return e.dir
}

func (e *Engine) ccOptions() cc.Options {
	return cc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
	}
}

// resolveCCPolicy maps Options.CCPolicy onto a concrete matrix cell for g.
// Explicit specs parse to their cell; "auto", "" and unparseable specs run
// the adaptive chooser over cheap O(|V|) statistics of g. Resolution is per
// graph, not per engine: Apply can reshape the graph enough to change the
// auto cell, and serving snapshots resolve against their own pinned graph.
func (e *Engine) resolveCCPolicy(g *Undirected) cc.Policy {
	if s := e.opt.CCPolicy; s != "" && s != "auto" {
		if pol, err := cc.ParsePolicy(s); err == nil {
			return pol
		}
	}
	return cc.ChoosePolicy(stats.CheapUndirected(g))
}

// ccSolve runs the complete CC decomposition of g under the engine's resolved
// policy. Every cell produces the same min-id canonical labeling, so callers
// (including inc.FromLabels seeding) are policy-agnostic.
func (e *Engine) ccSolve(g *Undirected, ctx context.Context) *cc.Result {
	opt := e.ccOptions()
	opt.Ctx = ctx
	return cc.Solve(g, e.resolveCCPolicy(g), opt)
}

// CCPolicy reports the matrix cell the engine would use for its current
// graph, in cc.ParsePolicy syntax — with Options.CCPolicy at "auto" this is
// the adaptive chooser's pick.
func (e *Engine) CCPolicy() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	return e.resolveCCPolicy(e.und).String()
}

// resolveSCCPolicy maps Options.SCCPolicy onto a concrete matrix cell for g.
// Explicit specs parse to their cell; "auto", "" and unparseable specs run
// the adaptive chooser over the directed-graph probe. Resolution is per
// graph, not per engine: Apply can reshape the graph enough to change the
// auto cell, and serving snapshots resolve against their own pinned graph.
func (e *Engine) resolveSCCPolicy(g *Directed) scc.Policy {
	if s := e.opt.SCCPolicy; s != "" && s != "auto" {
		if pol, err := scc.ParsePolicy(s); err == nil {
			return pol
		}
	}
	return scc.ChoosePolicy(stats.ProbeDirected(g, e.opt.Threads))
}

// sccSolve runs the complete SCC decomposition of g under the engine's
// resolved policy. Every cell produces the same min-id canonical labeling,
// so callers are policy-agnostic.
func (e *Engine) sccSolve(g *Directed, ctx context.Context) *scc.Result {
	opt := e.sccOptions()
	opt.Ctx = ctx
	return scc.Solve(g, e.resolveSCCPolicy(g), opt)
}

// SCCPolicy reports the matrix cell the engine would use for its current
// graph, in scc.ParsePolicy syntax — with Options.SCCPolicy at "auto" this
// is the adaptive chooser's pick. Undirected engines return ErrNotDirected,
// like every other SCC surface.
func (e *Engine) SCCPolicy() (string, error) {
	if !e.directed {
		return "", ErrNotDirected
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	return e.resolveSCCPolicy(e.dir).String(), nil
}

func (e *Engine) sccOptions() scc.Options {
	return scc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
	}
}

func (e *Engine) biccOptions(apOnly bool) bicc.Options {
	return bicc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoSPO:      e.opt.DisableSPO,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
		APOnly:     apOnly,
	}
}

// resolveBiCCPolicy maps Options.BiCCPolicy onto a concrete matrix cell for
// g. Explicit specs parse to their cell; "auto", "" and unparseable specs
// run the adaptive chooser over the undirected probe. Resolution is per
// graph, not per engine: Apply can reshape the graph enough to change the
// auto cell, and serving snapshots resolve against their own pinned graph.
func (e *Engine) resolveBiCCPolicy(g *Undirected) bicc.Policy {
	if s := e.opt.BiCCPolicy; s != "" && s != "auto" {
		if pol, err := bicc.ParsePolicy(s); err == nil {
			return pol
		}
	}
	return bicc.ChoosePolicy(stats.ProbeUndirected(g))
}

// biccSolve runs the BiCC decomposition (or the AP-only partial query) of g
// under the engine's resolved policy. Every cell produces the same canonical
// AP set and block partition, so callers are policy-agnostic.
func (e *Engine) biccSolve(g *Undirected, ctx context.Context, apOnly bool) *bicc.Result {
	opt := e.biccOptions(apOnly)
	opt.Ctx = ctx
	return bicc.Solve(g, e.resolveBiCCPolicy(g), opt)
}

// BiCCPolicy reports the matrix cell the engine would use for its current
// graph, in bicc.ParsePolicy syntax — with Options.BiCCPolicy at "auto" this
// is the adaptive chooser's pick. BiCC queries run on the undirected view of
// either engine kind, so BiCCPolicy never errors (mirroring CCPolicy).
func (e *Engine) BiCCPolicy() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	return e.resolveBiCCPolicy(e.und).String()
}

func (e *Engine) bgccOptions(bridgeOnly bool) bgcc.Options {
	return bgcc.Options{
		Threads:    e.opt.Threads,
		NoTrim:     e.opt.DisableTrim,
		NoSPO:      e.opt.DisableSPO,
		NoAdaptive: e.opt.DisableAdaptive,
		Mode:       e.opt.Traversal.mode(),
		BridgeOnly: bridgeOnly,
	}
}

// ctxErr reports the context's error; a nil context never errs (it is the
// engine-internal stand-in for context.Background without the interface call).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ccComplete returns the cached complete CC decomposition, computing it once.
func (e *Engine) ccComplete() *cc.Result {
	res, _ := e.ccCompleteCtx(nil)
	return res
}

func (e *Engine) ccCompleteCtx(ctx context.Context) (*cc.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ccCompleteLockedCtx(ctx)
}

// ccRawLockedCtx fills the compute-space CC cache under e.mu. Once incremental
// state exists the result is derived from the union-find in O(|V|) — the
// paper's workload-reduction philosophy applied to updates: no traversal
// reruns. Raw labels are min-id canonical in compute space; the incremental
// layer is always seeded from these, never from the remapped caller view.
// A cancelled ctx aborts the kernel; the partial result is discarded, never
// cached, so a later call recomputes from scratch.
func (e *Engine) ccRawLockedCtx(ctx context.Context) (*cc.Result, error) {
	if e.ccRaw == nil {
		if e.dyn != nil {
			// Dynamic mode: the forest census replaces any traversal — an
			// O(|V|) walk over the Euler tours, valid across deletions. A
			// dead ctx aborts before the walk so nothing partial is cached.
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			e.ccRaw = ccResultFromLabels(e.dyn.Labels())
		} else if e.inc != nil {
			e.ccRaw = e.inc.CCResult(e.opt.Threads)
		} else {
			res := e.ccSolve(e.und, ctx)
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			e.ccRaw = res
		}
	}
	return e.ccRaw, nil
}

// ccRawLocked is ccRawLockedCtx without cancellation (legacy callers).
func (e *Engine) ccRawLocked() *cc.Result {
	res, _ := e.ccRawLockedCtx(nil)
	return res
}

// ccCompleteLockedCtx fills the caller-facing CC cache under e.mu, remapping
// the raw decomposition to original ids when the engine is reordered.
func (e *Engine) ccCompleteLockedCtx(ctx context.Context) (*cc.Result, error) {
	if e.ccRes == nil {
		raw, err := e.ccRawLockedCtx(ctx)
		if err != nil {
			return nil, err
		}
		if e.perm != nil {
			e.ccRes = remapCC(raw, e.perm, e.opt.Threads)
		} else {
			e.ccRes = raw
		}
	}
	return e.ccRes, nil
}

// ccCompleteLocked is ccCompleteLockedCtx without cancellation.
func (e *Engine) ccCompleteLocked() *cc.Result {
	res, _ := e.ccCompleteLockedCtx(nil)
	return res
}

func (e *Engine) sccComplete() *scc.Result {
	res, _ := e.sccCompleteCtx(nil)
	return res
}

func (e *Engine) sccCompleteCtx(ctx context.Context) (*scc.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.sccRes == nil {
		raw := e.sccSolve(e.dir, ctx)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if e.perm != nil {
			raw = remapSCC(raw, e.perm, e.opt.Threads)
		}
		e.sccRes = raw
	}
	return e.sccRes, nil
}

func (e *Engine) biccComplete() *bicc.Result {
	res, _ := e.biccCompleteCtx(nil)
	return res
}

func (e *Engine) biccCompleteCtx(ctx context.Context) (*bicc.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.biccRes == nil {
		raw := e.biccSolve(e.und, ctx, false)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if e.perm != nil {
			raw = remapBiCC(raw, e.perm, e.eidMap, e.opt.Threads)
		}
		e.biccRes = raw
	}
	return e.biccRes, nil
}

func (e *Engine) bgccComplete() *bgcc.Result {
	res, _ := e.bgccCompleteCtx(nil)
	return res
}

func (e *Engine) bgccCompleteCtx(ctx context.Context) (*bgcc.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.bgccRes == nil {
		opt := e.bgccOptions(false)
		opt.Ctx = ctx
		raw := bgcc.Run(e.und, opt)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if e.perm != nil {
			raw = remapBgCC(raw, e.perm, e.eidMap, e.opt.Threads)
		}
		e.bgccRes = raw
	}
	return e.bgccRes, nil
}

// ApplyResult summarizes one Apply batch.
type ApplyResult struct {
	// NewEdges is the number of distinct undirected edges the batch added
	// (self-loops and duplicates of existing or pending edges are dropped).
	NewEdges int
	// NewArcs is the number of distinct directed arcs added (always 0 for
	// undirected engines).
	NewArcs int
	// Merged is the number of connected-component merges the batch caused.
	Merged int
	// Components is the connected-component count after the batch.
	Components int
	// Rebuilt reports whether this batch pushed the accumulated delta over
	// the rebuild threshold, triggering a full static recomputation.
	Rebuilt bool
	// DeletedEdges is the number of undirected edges the batch removed
	// (deletes of absent edges are dropped; always 0 on insert-only paths).
	DeletedEdges int
	// DeletedArcs is the number of directed arcs removed (always 0 for
	// undirected engines).
	DeletedArcs int
	// Split is the number of component splits the deletions caused — cuts
	// for which the dynamic forest found no replacement edge.
	Split int
	// Dynamic reports whether the batch ran against the fully dynamic
	// spanning forest (true from the first delete op onward).
	Dynamic bool
}

// Apply inserts a batch of edges into the engine's graph. On a directed
// engine each edge is a directed arc U→V (its endpoints also join in the
// undirected view, mirroring Undirect); on an undirected engine it is an
// undirected edge {U,V}. Self-loops and duplicates are dropped. Endpoints
// must be existing vertices — Apply never grows the vertex set.
//
// Apply patches the incremental connectivity state in parallel and
// invalidates exactly the caches the batch can affect:
//
//   - a batch that adds no new edge or arc preserves every cache;
//   - new undirected edges that merge components invalidate the CC-derived
//     caches (CC labels are then re-derived from the union-find, not
//     recomputed) — edges landing inside one component preserve them;
//   - any new undirected edge invalidates the 2-connectivity and
//     degree-structure caches (BiCC, BgCC, APs, bridges, betweenness,
//     coreness), which are recomputed lazily on next query;
//   - new directed arcs invalidate the SCC and condensation caches, also
//     recomputed lazily.
//
// When the edges inserted since the last full decomposition exceed
// Options.RebuildThreshold times the graph size at that point, Apply
// materializes the graph and reruns the static CC pipeline, reseeding the
// incremental state (a freshly flattened union-find).
func (e *Engine) Apply(batch []Edge) (*ApplyResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.und.NumVertices()
	for _, ed := range batch {
		if int(ed.U) >= n || int(ed.V) >= n {
			return nil, fmt.Errorf("aquila: Apply: edge (%d,%d) out of range [0,%d)", ed.U, ed.V, n)
		}
	}
	return e.applyLocked(batch)
}

// applyLocked is Apply's body, shared with the insert-only fast path of
// ApplyUpdates. Once the engine has promoted to the dynamic forest, inserts
// route there too — the union-find no longer exists.
func (e *Engine) applyLocked(batch []Edge) (*ApplyResult, error) {
	if e.dyn != nil {
		ups := make([]Update, len(batch))
		for i, ed := range batch {
			ups[i] = Update{Op: OpInsert, U: ed.U, V: ed.V}
		}
		return e.applyUpdatesDynLocked(ups)
	}
	if e.inc == nil {
		// First update: the static pipeline seeds the incremental state from
		// the raw compute-space labels (min-id canonical there).
		res := e.ccRawLocked()
		e.inc = inc.FromLabels(res.Label, res.NumComponents)
		e.undSet = make(map[[2]V]struct{})
		e.dirSet = make(map[[2]V]struct{})
		e.baseEdges = e.und.NumEdges()
		e.sinceRebuild = 0
	}

	// Split the batch into genuinely new undirected edges and directed arcs,
	// checking both the materialized graphs and the pending delta. Under a
	// reorder the delta (like everything the kernels see) lives in compute
	// ids, so endpoints are translated up front.
	var newUnd, newDir []graph.Edge
	for _, ed := range batch {
		if ed.U == ed.V {
			continue
		}
		eu, ev := e.mapV(ed.U), e.mapV(ed.V)
		if e.directed {
			key := [2]V{eu, ev}
			if _, dup := e.dirSet[key]; !dup && !e.dir.HasArc(eu, ev) {
				newDir = append(newDir, graph.Edge{U: eu, V: ev})
				e.dirSet[key] = struct{}{}
			}
		}
		u, v := eu, ev
		if u > v {
			u, v = v, u
		}
		key := [2]V{u, v}
		if _, dup := e.undSet[key]; !dup && !e.und.HasEdge(u, v) {
			newUnd = append(newUnd, graph.Edge{U: u, V: v})
			e.undSet[key] = struct{}{}
		}
	}

	res := &ApplyResult{NewEdges: len(newUnd), NewArcs: len(newDir)}
	if len(newUnd) == 0 && len(newDir) == 0 {
		res.Components = e.inc.ComponentCount()
		return res, nil // fully duplicate batch: every cache stays valid
	}

	res.Merged = e.inc.Apply(newUnd, e.opt.Threads)
	e.deltaUnd = append(e.deltaUnd, newUnd...)
	e.deltaDir = append(e.deltaDir, newDir...)
	e.sinceRebuild += int64(len(newUnd))

	e.cacheGen++
	if len(newUnd) > 0 {
		if res.Merged > 0 {
			e.ccRaw, e.ccRes, e.largestCC = nil, nil, nil
		}
		e.biccRes, e.bgccRes, e.apOnly, e.brOnly = nil, nil, nil, nil
		e.betweenness, e.coreness = nil, nil
	}
	if len(newDir) > 0 {
		e.sccRes, e.condensation = nil, nil
	}

	if th := e.opt.rebuildThreshold(); th > 0 && float64(e.sinceRebuild) >= th*float64(e.baseEdges+1) {
		e.rebuildLocked()
		res.Rebuilt = true
	}
	res.Components = e.inc.ComponentCount()
	return res, nil
}

// graphSet bundles the graph pointers one materialization step transforms:
// the compute CSRs, the caller-id CSRs (reordered engines only) and the
// edge-id translation. Both the engine (under e.mu) and serving snapshots
// (outside any lock) materialize through the same function.
type graphSet struct {
	dir     *Directed
	und     *Undirected
	origDir *Directed
	origUnd *Undirected
	eidMap  []int64
}

// materializeGraphs folds delta edges into fresh CSR graphs and returns the
// updated set. It reads the input graphs but never mutates them, so a caller
// holding only immutable snapshots (a serving Snapshot) can materialize
// without any lock.
func materializeGraphs(directed bool, perm *graph.Permutation, gs graphSet, deltaUnd, deltaDir []graph.Edge, th int) graphSet {
	if len(deltaUnd) == 0 && len(deltaDir) == 0 {
		return gs
	}
	if directed {
		edges := make([]graph.Edge, 0, int(gs.dir.NumArcs())+len(deltaDir))
		for u := 0; u < gs.dir.NumVertices(); u++ {
			for _, v := range gs.dir.Out(V(u)) {
				edges = append(edges, graph.Edge{U: V(u), V: v})
			}
		}
		edges = append(edges, deltaDir...)
		gs.dir = graph.BuildDirectedThreads(gs.dir.NumVertices(), edges, th)
		gs.und = graph.UndirectThreads(gs.dir, th)
	} else {
		eps := gs.und.EdgeEndpoints()
		edges := make([]graph.Edge, 0, len(eps)+len(deltaUnd))
		for _, ep := range eps {
			edges = append(edges, graph.Edge{U: ep[0], V: ep[1]})
		}
		edges = append(edges, deltaUnd...)
		gs.und = graph.BuildUndirectedThreads(gs.und.NumVertices(), edges, th)
	}
	if perm != nil {
		// The compute graphs absorbed the delta in compute ids; re-derive the
		// caller-id graphs by applying the inverse relabeling, and refresh the
		// edge-id translation (dense ids shift when edges are inserted).
		inv := &graph.Permutation{Perm: perm.Inv, Inv: perm.Perm}
		if directed {
			gs.origDir = inv.ApplyDirected(gs.dir, th)
			gs.origUnd = graph.UndirectThreads(gs.origDir, th)
		} else {
			gs.origUnd = inv.ApplyUndirected(gs.und, th)
		}
		gs.eidMap = perm.EdgeIDMap(gs.origUnd, gs.und, th)
	}
	return gs
}

// materializeLocked folds the pending delta edges into fresh CSR graphs.
// Queries that walk adjacency call this lazily; pure union-find queries
// never pay for it. Published graph pointers are never mutated in place, so
// snapshots held by concurrent readers stay valid.
func (e *Engine) materializeLocked() {
	if e.dyn != nil {
		e.materializeDynLocked()
		return
	}
	if len(e.deltaUnd) == 0 && len(e.deltaDir) == 0 {
		return
	}
	gs := materializeGraphs(e.directed, e.perm, graphSet{
		dir: e.dir, und: e.und, origDir: e.origDir, origUnd: e.origUnd, eidMap: e.eidMap,
	}, e.deltaUnd, e.deltaDir, e.opt.Threads)
	e.dir, e.und, e.origDir, e.origUnd, e.eidMap = gs.dir, gs.und, gs.origDir, gs.origUnd, gs.eidMap
	e.deltaUnd, e.deltaDir = nil, nil
	e.undSet, e.dirSet = make(map[[2]V]struct{}), make(map[[2]V]struct{})
}

// getReach pops a traversal scratch off the shared pool (or makes one sized
// for n vertices). Pair with putReach; a bitmap that must outlive the checkout
// is taken with DetachVisited before the scratch goes back.
func (e *Engine) getReach(n int) *bfs.ReachScratch {
	return e.reach.Get(n, e.opt.Threads)
}

// putReach returns a scratch to the pool for the next query.
func (e *Engine) putReach(s *bfs.ReachScratch) {
	e.reach.Put(s)
}

// rebuildLocked is the fall-back-to-static path: materialize the delta, run
// the full cc pipeline, and reseed the incremental state from the fresh
// decomposition. In dynamic mode the forest stays authoritative for future
// updates; the rebuild re-canonicalizes the cached decomposition through the
// static pipeline (re-resolving the CC policy chooser against the reshaped
// graph) and resets the rebuild budget.
func (e *Engine) rebuildLocked() {
	e.materializeLocked()
	e.cacheGen++
	e.ccRaw = e.ccSolve(e.und, nil)
	e.ccRes, e.largestCC = nil, nil
	if e.dyn == nil {
		e.inc = inc.FromLabels(e.ccRaw.Label, e.ccRaw.NumComponents)
	}
	e.baseEdges = e.und.NumEdges()
	e.sinceRebuild = 0
}

package aquila

import (
	"aquila/internal/apps/betweenness"
	"aquila/internal/apps/condense"
	"aquila/internal/apps/kcore"
)

// Condensation is the SCC-contracted DAG of a directed graph (paper §2.1,
// application 1), supporting topological order and O(1) reachability queries
// after a lazily built index.
type Condensation = condense.DAG

// Condensation contracts the engine's directed graph by its SCCs. The result
// is computed once and cached.
func (e *Engine) Condensation() (*Condensation, error) {
	if !e.directed {
		return nil, ErrNotDirected
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.condensation == nil {
		e.condensation = condense.Build(e.dir, e.sccOptions())
	}
	return e.condensation, nil
}

// BetweennessCentrality computes exact betweenness centrality over the
// undirected view (paper §2.1, application 2), using the biconnected-
// decomposition strategy — per-block weighted Brandes guided by the
// articulation points — unless partial computation is disabled, in which case
// plain Brandes runs. Scores use the ordered-pair convention; the result is
// cached.
func (e *Engine) BetweennessCentrality() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.betweenness == nil {
		if e.opt.DisablePartial || e.opt.DisableTrim {
			e.betweenness = betweenness.Brandes(e.und, e.opt.Threads)
		} else {
			e.betweenness = betweenness.Decomposed(e.und, e.opt.Threads)
		}
	}
	return e.betweenness
}

// Coreness returns the k-core decomposition of the undirected view: for each
// vertex, the largest k such that it survives in the k-core. The result is
// cached.
func (e *Engine) Coreness() []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.coreness == nil {
		e.coreness = kcore.Decompose(e.und).Coreness
	}
	return e.coreness
}

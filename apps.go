package aquila

import (
	"aquila/internal/apps/betweenness"
	"aquila/internal/apps/condense"
	"aquila/internal/apps/kcore"
)

// Condensation is the SCC-contracted DAG of a directed graph (paper §2.1,
// application 1), supporting topological order and O(1) reachability queries
// after a lazily built index.
type Condensation = condense.DAG

// Condensation contracts the engine's directed graph by its SCCs. The result
// is computed once and cached.
func (e *Engine) Condensation() (*Condensation, error) {
	if !e.directed {
		return nil, ErrNotDirected
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.condensation == nil {
		// The DAG's vertex-keyed queries (component-of, reachability) must
		// answer in caller ids, so condensation always runs on the
		// original-id graph rather than the reordered compute graph.
		g := e.dir
		if e.perm != nil {
			g = e.origDir
		}
		e.condensation = condense.Build(g, e.sccOptions())
	}
	return e.condensation, nil
}

// BetweennessCentrality computes exact betweenness centrality over the
// undirected view (paper §2.1, application 2), using the biconnected-
// decomposition strategy — per-block weighted Brandes guided by the
// articulation points — unless partial computation is disabled, in which case
// plain Brandes runs. Scores use the ordered-pair convention; the result is
// cached.
func (e *Engine) BetweennessCentrality() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.betweenness == nil {
		var raw []float64
		if e.opt.DisablePartial || e.opt.DisableTrim {
			raw = betweenness.Brandes(e.und, e.opt.Threads)
		} else {
			raw = betweenness.Decomposed(e.und, e.opt.Threads)
		}
		if e.perm != nil {
			raw = remapFloats(raw, e.perm, e.opt.Threads)
		}
		e.betweenness = raw
	}
	return e.betweenness
}

// Coreness returns the k-core decomposition of the undirected view: for each
// vertex, the largest k such that it survives in the k-core. The result is
// cached.
func (e *Engine) Coreness() []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeLocked()
	if e.coreness == nil {
		raw := kcore.Decompose(e.und).Coreness
		if e.perm != nil {
			raw = remapInt32s(raw, e.perm, e.opt.Threads)
		}
		e.coreness = raw
	}
	return e.coreness
}

package aquila

import (
	"sync"
	"sync/atomic"
	"testing"

	"aquila/internal/baseline/serialdfs"
	"aquila/internal/gen"
	"aquila/internal/verify"
)

func TestApplyBasics(t *testing.T) {
	e := NewEngine(NewUndirected(6, []Edge{{U: 0, V: 1}}), Options{Threads: 2})
	res, err := e.Apply([]Edge{
		{U: 1, V: 2}, // new, merges
		{U: 2, V: 1}, // duplicate of the above (reversed)
		{U: 3, V: 3}, // self-loop
		{U: 0, V: 1}, // already in the graph
		{U: 4, V: 5}, // new, merges
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewEdges != 2 || res.NewArcs != 0 || res.Merged != 2 {
		t.Fatalf("res = %+v, want NewEdges=2 NewArcs=0 Merged=2", res)
	}
	if res.Components != 3 { // {0,1,2} {3} {4,5}
		t.Fatalf("Components = %d, want 3", res.Components)
	}
	if !e.Connected(0, 2) || e.Connected(0, 3) || !e.Connected(4, 5) {
		t.Errorf("connectivity wrong after Apply")
	}
	if e.CountCC() != 3 {
		t.Errorf("CountCC = %d, want 3", e.CountCC())
	}
}

func TestApplyOutOfRange(t *testing.T) {
	e := NewEngine(NewUndirected(3, nil), Options{})
	if _, err := e.Apply([]Edge{{U: 0, V: 3}}); err == nil {
		t.Fatalf("out-of-range endpoint accepted")
	}
	if _, err := e.Apply([]Edge{{U: 7, V: 0}}); err == nil {
		t.Fatalf("out-of-range endpoint accepted")
	}
	// The failed batches must not have changed anything.
	if e.CountCC() != 3 {
		t.Errorf("CountCC = %d after rejected batches, want 3", e.CountCC())
	}
}

func TestApplyDirectedArcs(t *testing.T) {
	// A directed path 0→1→2; closing arcs create a cycle, changing SCC but
	// adding no undirected edge.
	e := NewDirectedEngine(NewDirected(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}), Options{Threads: 2})
	if s, _ := e.SCC(); s.NumComponents != 3 {
		t.Fatalf("path SCC count = %d, want 3", s.NumComponents)
	}
	res, err := e.Apply([]Edge{{U: 2, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewArcs != 1 || res.NewEdges != 1 || res.Merged != 0 {
		t.Fatalf("res = %+v, want NewArcs=1 NewEdges=1 Merged=0", res)
	}
	if s, _ := e.SCC(); s.NumComponents != 1 {
		t.Errorf("cycle SCC count = %d, want 1", s.NumComponents)
	}
	if ok, _ := e.IsStronglyConnected(); !ok {
		t.Errorf("cycle should be strongly connected")
	}
	// Reverse arc of an existing edge: arc-only update.
	res, err = e.Apply([]Edge{{U: 1, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewArcs != 1 || res.NewEdges != 0 {
		t.Fatalf("reverse arc res = %+v, want NewArcs=1 NewEdges=0", res)
	}
	if got := e.Directed().NumArcs(); got != 4 {
		t.Errorf("materialized arcs = %d, want 4", got)
	}
}

func TestApplyMatchesStaticEngine(t *testing.T) {
	for seed := uint64(70); seed < 73; seed++ {
		const n = 400
		full := gen.RandomUndirected(n, 1200, seed)
		eps := full.EdgeEndpoints()
		edges := make([]Edge, len(eps))
		for i, ep := range eps {
			edges[i] = Edge{U: ep[0], V: ep[1]}
		}
		half := len(edges) / 2

		e := NewEngine(NewUndirected(n, edges[:half]), Options{Threads: 2})
		e.CC() // warm the cache so the first Apply seeds from it
		for lo := half; lo < len(edges); lo += 97 {
			hi := lo + 97
			if hi > len(edges) {
				hi = len(edges)
			}
			if _, err := e.Apply(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}

		truth := serialdfs.CC(full)
		if err := verify.SamePartition(e.CC().Label, truth); err != nil {
			t.Fatalf("seed %d: incremental CC diverged: %v", seed, err)
		}
		static := NewEngine(full, Options{Threads: 2})
		if e.CountCC() != static.CountCC() {
			t.Fatalf("seed %d: CountCC %d vs static %d", seed, e.CountCC(), static.CountCC())
		}
		if e.LargestCC().Size != static.LargestCC().Size {
			t.Fatalf("seed %d: LargestCC %d vs static %d", seed, e.LargestCC().Size, static.LargestCC().Size)
		}
		if e.IsConnected() != static.IsConnected() {
			t.Fatalf("seed %d: IsConnected disagrees", seed)
		}
		// Adjacency-walking queries see the materialized graph.
		if got, want := e.Undirected().NumEdges(), full.NumEdges(); got != want {
			t.Fatalf("seed %d: materialized edges = %d, want %d", seed, got, want)
		}
		if len(e.Bridges()) != len(static.Bridges()) {
			t.Fatalf("seed %d: bridge counts disagree", seed)
		}
	}
}

func TestApplyRebuildThreshold(t *testing.T) {
	base := make([]Edge, 0, 20)
	for i := 0; i < 20; i++ {
		base = append(base, Edge{U: V(2 * i), V: V(2*i + 1)})
	}
	fresh := func(th float64) *Engine {
		return NewEngine(NewUndirected(60, base), Options{Threads: 2, RebuildThreshold: th})
	}
	star := func(k int) []Edge {
		out := make([]Edge, 0, k)
		for i := 1; i <= k; i++ {
			out = append(out, Edge{U: 0, V: V(40 + i%20)})
		}
		return out
	}

	// Default threshold 0.25 × 20 base edges ⇒ the 15-edge batch rebuilds.
	res, err := fresh(0).Apply(star(15))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Errorf("default threshold: big batch did not rebuild")
	}

	// Negative threshold disables rebuilds entirely.
	e := fresh(-1)
	res, err = e.Apply(star(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilt {
		t.Errorf("RebuildThreshold<0 still rebuilt")
	}

	// A huge threshold also avoids the rebuild.
	if res, _ = fresh(100).Apply(star(15)); res.Rebuilt {
		t.Errorf("huge threshold rebuilt")
	}

	// After a rebuild the delta counter resets: the same engine accepts small
	// batches without immediately rebuilding again, and answers stay right.
	e = fresh(0.5)
	if res, _ = e.Apply(star(15)); !res.Rebuilt {
		t.Fatalf("0.5 threshold: 15 edges over 20 base should rebuild")
	}
	if res, _ = e.Apply([]Edge{{U: 1, V: 3}}); res.Rebuilt {
		t.Errorf("fresh base: single edge rebuilt again")
	}
	truth := serialdfs.CC(e.Undirected())
	if err := verify.SamePartition(e.CC().Label, truth); err != nil {
		t.Fatalf("post-rebuild CC diverged: %v", err)
	}
}

func TestApplyPreservesReaderSnapshots(t *testing.T) {
	// Graph views handed out before an Apply are immutable snapshots.
	e := NewEngine(NewUndirected(4, []Edge{{U: 0, V: 1}}), Options{})
	before := e.Undirected()
	if _, err := e.Apply([]Edge{{U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if before.NumEdges() != 1 {
		t.Errorf("snapshot mutated: %d edges", before.NumEdges())
	}
	if e.Undirected().NumEdges() != 2 {
		t.Errorf("materialized view missing the new edge")
	}
}

// TestEngineConcurrentApplyAndQuery races one writer applying batches against
// readers issuing the full query mix. Run under -race this exercises the
// engine's locking and the lock-free Connected fast path; the assertions
// check monotonicity (insert-only updates never disconnect anything).
func TestEngineConcurrentApplyAndQuery(t *testing.T) {
	const (
		n       = 2000
		readers = 4
	)
	var chain []Edge
	for i := 0; i+1 < n; i++ {
		chain = append(chain, Edge{U: V(i), V: V(i + 1)})
	}
	rng := gen.NewRNG(7)
	for i := len(chain) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		chain[i], chain[j] = chain[j], chain[i]
	}
	e := NewEngine(NewUndirected(n, nil), Options{Threads: 2})

	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := gen.NewRNG(uint64(id) + 100)
			seen := make(map[[2]V]bool)
			last := n + 1
			for !done.Load() {
				u := V(rng.Intn(n))
				v := V(rng.Intn(n))
				p := [2]V{u, v}
				if u > v {
					p = [2]V{v, u}
				}
				conn := e.Connected(u, v)
				if seen[p] && !conn {
					errc <- "connected pair later disconnected"
					return
				}
				if conn {
					seen[p] = true
				}
				if c := e.CountCC(); c > last {
					errc <- "CountCC increased under insert-only updates"
					return
				} else {
					last = c
				}
				if rng.Intn(50) == 0 {
					e.LargestCC()
				}
				if rng.Intn(50) == 0 {
					e.IsConnected()
				}
			}
		}(r)
	}

	for lo := 0; lo < len(chain); lo += 40 {
		hi := lo + 40
		if hi > len(chain) {
			hi = len(chain)
		}
		if _, err := e.Apply(chain[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	if !e.IsConnected() || e.CountCC() != 1 {
		t.Fatalf("final state not one component")
	}
}

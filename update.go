package aquila

import (
	"errors"
	"fmt"

	"aquila/internal/cc"
	"aquila/internal/dyn"
	"aquila/internal/graph"
)

// UpdateOp discriminates the two batch update operations.
type UpdateOp uint8

const (
	// OpInsert adds an edge (directed engines: an arc U→V whose endpoints
	// also join in the undirected view, mirroring Apply).
	OpInsert UpdateOp = iota
	// OpDelete removes an edge (directed engines: the arc U→V; the endpoints
	// part in the undirected view only when neither direction remains).
	OpDelete
)

func (op UpdateOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("UpdateOp(%d)", uint8(op))
}

// Update is one edge mutation in an ApplyUpdates batch.
type Update struct {
	Op   UpdateOp
	U, V V
}

// Insert builds an insert update (Apply's historical operation).
func Insert(u, v V) Update { return Update{Op: OpInsert, U: u, V: v} }

// Delete builds a delete update.
func Delete(u, v V) Update { return Update{Op: OpDelete, U: u, V: v} }

// ErrDeletesDisabled is returned by ApplyUpdates when a batch contains
// delete operations but Options.DisableDynamic pinned the engine to the
// monotone insert-only incremental layer.
var ErrDeletesDisabled = errors.New("aquila: delete updates need the dynamic layer (Options.DisableDynamic is set)")

// Dynamic reports whether the engine has promoted to the fully dynamic
// connectivity structure (which happens on the first batch containing a
// delete operation).
func (e *Engine) Dynamic() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dyn != nil
}

// ApplyUpdates applies a mixed batch of edge insertions and deletions in
// order and returns the batch summary. Insert-only batches on an engine that
// has never seen a delete take exactly the Apply fast path (CAS union-find);
// the first delete transparently promotes the engine to the fully dynamic
// spanning forest (internal/dyn), after which every batch — including pure
// inserts routed through Apply — maintains the forest instead.
//
// Semantics per operation (endpoints must be existing vertices; Apply and
// ApplyUpdates never grow the vertex set):
//
//   - inserting an edge that already exists is a no-op (counted in neither
//     NewEdges nor Merged), and self-loops are always dropped, mirroring
//     Apply and the CSR builders;
//   - deleting an edge that does not exist is a no-op;
//   - on directed engines the arc set is authoritative: deleting arc U→V
//     removes the undirected edge {U,V} only when arc V→U is absent too.
//
// Cache invalidation mirrors Apply, extended for deletions: a batch whose
// net effect merges or splits components invalidates the CC-derived caches
// (re-derived from the forest census, not recomputed by traversal); any
// structural change invalidates the adjacency-shaped caches (SCC, BiCC,
// BgCC, APs, bridges, betweenness, coreness), which recompute lazily — at
// which point the CC/SCC/BiCC policy choosers re-resolve against the
// reshaped graph. Past Options.RebuildThreshold (counting inserts plus
// deletes since the last rebuild) the engine falls back to the static CC
// pipeline to re-canonicalize, exactly like the insert-only path.
func (e *Engine) ApplyUpdates(batch []Update) (*ApplyResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.und.NumVertices()
	hasDelete := false
	for _, up := range batch {
		if int(up.U) >= n || int(up.V) >= n {
			return nil, fmt.Errorf("aquila: ApplyUpdates: edge (%d,%d) out of range [0,%d)", up.U, up.V, n)
		}
		switch up.Op {
		case OpInsert:
		case OpDelete:
			hasDelete = true
		default:
			return nil, fmt.Errorf("aquila: ApplyUpdates: unknown op %d on edge (%d,%d)", up.Op, up.U, up.V)
		}
	}
	if e.dyn == nil {
		if !hasDelete {
			// Pure inserts before any delete: the monotone CAS union-find
			// path is strictly faster, so stay on it.
			edges := make([]Edge, len(batch))
			for i, up := range batch {
				edges[i] = Edge{U: up.U, V: up.V}
			}
			return e.applyLocked(edges)
		}
		if e.opt.DisableDynamic {
			return nil, ErrDeletesDisabled
		}
		e.promoteDynLocked()
	}
	return e.applyUpdatesDynLocked(batch)
}

// promoteDynLocked retires the insert-only incremental layer and builds the
// fully dynamic spanning forest from the materialized graph. Called (under
// e.mu) on the first batch containing a delete.
func (e *Engine) promoteDynLocked() {
	e.materializeLocked() // fold any pending insert delta first
	f := dyn.NewForest(e.und.NumVertices())
	for _, ep := range e.und.EdgeEndpoints() {
		f.Link(ep[0], ep[1])
	}
	if e.directed {
		// The arc set becomes authoritative for the directed graph (and for
		// when an undirected edge may be cut).
		e.dirSet = make(map[[2]V]struct{}, e.dir.NumArcs())
		for u := 0; u < e.dir.NumVertices(); u++ {
			for _, v := range e.dir.Out(V(u)) {
				e.dirSet[[2]V{V(u), v}] = struct{}{}
			}
		}
	} else {
		e.dirSet = nil
	}
	e.dyn = f
	e.inc = nil
	e.undSet = nil
	e.baseEdges = e.und.NumEdges()
	e.sinceRebuild = 0
}

// applyUpdatesDynLocked processes one mixed batch against the dynamic
// forest. All graph mutation happens here, in compute ids; CSRs go stale
// (dynDirty) and are rebuilt lazily by materializeLocked.
func (e *Engine) applyUpdatesDynLocked(batch []Update) (*ApplyResult, error) {
	res := &ApplyResult{Dynamic: true}
	changedUnd, changedDir := false, false
	for _, up := range batch {
		u, v := e.mapPair(up.U, up.V)
		switch {
		case e.directed && up.Op == OpInsert:
			if u == v {
				continue // self-loops never enter the CSRs; mirror Apply
			}
			key := [2]V{u, v}
			if _, dup := e.dirSet[key]; dup {
				continue
			}
			e.dirSet[key] = struct{}{}
			res.NewArcs++
			changedDir = true
			if !e.dyn.HasEdge(u, v) {
				res.NewEdges++
				changedUnd = true
				if e.dyn.Link(u, v) {
					res.Merged++
				}
			}
		case e.directed && up.Op == OpDelete:
			if u == v {
				continue
			}
			key := [2]V{u, v}
			if _, ok := e.dirSet[key]; !ok {
				continue
			}
			delete(e.dirSet, key)
			res.DeletedArcs++
			changedDir = true
			if _, rev := e.dirSet[[2]V{v, u}]; !rev {
				res.DeletedEdges++
				changedUnd = true
				if split, _ := e.dyn.Cut(u, v); split {
					res.Split++
				}
			}
		case up.Op == OpInsert:
			if u == v {
				continue // self-loops never enter the CSRs; mirror Apply
			}
			if !e.dyn.HasEdge(u, v) {
				res.NewEdges++
				changedUnd = true
				if e.dyn.Link(u, v) {
					res.Merged++
				}
			}
		default: // undirected delete
			if u == v {
				continue
			}
			split, existed := e.dyn.Cut(u, v)
			if existed {
				res.DeletedEdges++
				changedUnd = true
				if split {
					res.Split++
				}
			}
		}
	}

	if changedUnd || changedDir {
		e.cacheGen++
		e.dynDirty = true
		e.sinceRebuild += int64(res.NewEdges + res.DeletedEdges)
		if changedUnd {
			if res.Merged > 0 || res.Split > 0 {
				e.ccRaw, e.ccRes, e.largestCC = nil, nil, nil
			}
			e.biccRes, e.bgccRes, e.apOnly, e.brOnly = nil, nil, nil, nil
			e.betweenness, e.coreness = nil, nil
		}
		if changedDir {
			e.sccRes, e.condensation = nil, nil
		}
		if th := e.opt.rebuildThreshold(); th > 0 && float64(e.sinceRebuild) >= th*float64(e.baseEdges+1) {
			e.rebuildLocked()
			res.Rebuilt = true
		}
	}
	res.Components = e.dyn.ComponentCount()
	return res, nil
}

// materializeDynLocked rebuilds the CSR graphs from the dynamic edge sets.
// Unlike the insert-only delta fold, deletions mean the new CSR cannot be
// derived by appending — it is rebuilt from the forest's live edge list (or,
// directed, the authoritative arc set).
func (e *Engine) materializeDynLocked() {
	if !e.dynDirty {
		return
	}
	th := e.opt.Threads
	if e.directed {
		edges := make([]graph.Edge, 0, len(e.dirSet))
		for k := range e.dirSet {
			edges = append(edges, graph.Edge{U: k[0], V: k[1]})
		}
		e.dir = graph.BuildDirectedThreads(e.dir.NumVertices(), edges, th)
		e.und = graph.UndirectThreads(e.dir, th)
	} else {
		pairs := e.dyn.EdgeList(nil)
		edges := make([]graph.Edge, 0, len(pairs))
		for _, p := range pairs {
			edges = append(edges, graph.Edge{U: p[0], V: p[1]})
		}
		e.und = graph.BuildUndirectedThreads(e.und.NumVertices(), edges, th)
	}
	if e.perm != nil {
		// Same inverse-relabeling dance as the insert-only fold: the compute
		// CSRs absorbed the updates in compute ids, the caller-id graphs and
		// the edge-id translation are re-derived from them.
		inv := &graph.Permutation{Perm: e.perm.Inv, Inv: e.perm.Perm}
		if e.directed {
			e.origDir = inv.ApplyDirected(e.dir, th)
			e.origUnd = graph.UndirectThreads(e.origDir, th)
		} else {
			e.origUnd = inv.ApplyUndirected(e.und, th)
		}
		e.eidMap = e.perm.EdgeIDMap(e.origUnd, e.und, th)
	}
	e.dynDirty = false
}

// ccResultFromLabels materializes a cc.Result from a canonical min-id
// labeling — the dynamic-mode analog of inc.CCResult: the forest census
// replaces any traversal.
func ccResultFromLabels(label []uint32, num int) *cc.Result {
	res := &cc.Result{Label: label, NumComponents: num, Sizes: make(map[uint32]int, num)}
	for _, l := range label {
		res.Sizes[l]++
	}
	for l, c := range res.Sizes {
		if c > res.LargestSize || (c == res.LargestSize && l < res.LargestLabel) {
			res.LargestSize = c
			res.LargestLabel = l
		}
	}
	return res
}

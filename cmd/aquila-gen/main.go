// Command aquila-gen writes synthetic benchmark graphs to disk, either as
// plain edge lists or as mmap-able .aqg v2 binary containers.
//
// Usage:
//
//	aquila-gen -kind rmat -scale 14 -out rmat14.txt
//	aquila-gen -kind social -scale 10 -format aqg -out social.aqg
//	aquila-gen -kind suite -out-dir graphs/      # the 11 Table 1 stand-ins
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aquila/internal/bench"
	"aquila/internal/gen"
	"aquila/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "rmat, random, social, web, suite")
		scale  = flag.Int("scale", 12, "generator scale")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "txt", "txt (edge list), aqg (mmap-able v2 container), or bin (same as aqg)")
		out    = flag.String("out", "", "output file (single graph)")
		outDir = flag.String("out-dir", "", "output directory (suite)")
	)
	flag.Parse()

	if *kind == "suite" {
		if *outDir == "" {
			fatal("suite needs -out-dir")
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err.Error())
		}
		for _, w := range bench.Suite(1.0) {
			path := filepath.Join(*outDir, w.Abbr+"."+*format)
			if err := writeGraph(w.G, path, *format); err != nil {
				fatal(err.Error())
			}
			fmt.Printf("%s: %d vertices, %d arcs -> %s\n", w.Name, w.G.NumVertices(), w.G.NumArcs(), path)
		}
		return
	}

	var g *graph.Directed
	switch *kind {
	case "rmat":
		g = gen.RMAT(*scale, 16, *seed)
	case "random":
		n := *scale * 1000
		g = gen.Random(n, 16*n, *seed)
	case "social":
		g = gen.Social(gen.SocialConfig{
			GiantVertices: *scale * 1000, GiantAvgDeg: 6,
			SmallComps: *scale * 40, SmallMaxSize: 6,
			Isolated: *scale * 20, MutualFrac: 0.4, Seed: *seed,
		})
	case "web":
		g = gen.Web(gen.WebConfig{
			Communities: *scale * 4, CommunitySize: 250, IntraDeg: 5,
			InterEdges: *scale * 200, PendantFrac: 0.1, Seed: *seed,
		})
	default:
		fatal("unknown kind " + *kind)
	}
	if *out == "" {
		fatal("need -out FILE")
	}
	if err := writeGraph(g, *out, *format); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("%d vertices, %d arcs -> %s\n", g.NumVertices(), g.NumArcs(), *out)
}

func writeGraph(g *graph.Directed, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "bin", "aqg":
		// Binary output is the .aqg v2 container: versioned, page-aligned,
		// mmap-able, and readable by every command's auto-detecting loader
		// (legacy v1 files remain readable, just no longer written).
		return graph.WriteContainer(f, g)
	default:
		return graph.WriteEdgeList(f, g)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "aquila-gen:", msg)
	os.Exit(1)
}

// Command aquila-verify cross-checks every parallel Aquila algorithm against
// the serial ground truth on a user-supplied (or generated) graph — the
// self-check an adopter runs before trusting results on their own data.
//
// Usage:
//
//	aquila-verify -graph my-edges.txt
//	aquila-verify -gen rmat -scale 13
//
// Exit status 0 means every decomposition matched Hopcroft–Tarjan / Tarjan.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aquila"
	"aquila/internal/baseline/serialdfs"
	"aquila/internal/bgcc"
	"aquila/internal/bicc"
	"aquila/internal/cc"
	"aquila/internal/cli"
	"aquila/internal/gen"
	"aquila/internal/graph"
	"aquila/internal/scc"
	"aquila/internal/verify"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file")
		genKind   = flag.String("gen", "", "generate instead: rmat, random, social")
		scale     = flag.Int("scale", 12, "generator scale")
		seed      = flag.Uint64("seed", 1, "generator seed")
		threads   = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	d, err := obtain(*graphPath, *genKind, *scale, *seed, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila-verify:", err)
		os.Exit(1)
	}
	u := graph.Undirect(d)
	fmt.Printf("graph: %d vertices, %d arcs (%d undirected edges)\n",
		d.NumVertices(), d.NumArcs(), u.NumEdges())

	failed := false
	check := func(name string, fn func() error) {
		start := time.Now()
		err := fn()
		status := "PASS"
		if err != nil {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %-6s %s (%v)", name, status, time.Since(start).Round(time.Microsecond))
		if err != nil {
			fmt.Printf("  %v", err)
		}
		fmt.Println()
	}

	check("CC", func() error {
		return verify.SamePartition(cc.Run(u, cc.Options{Threads: *threads}).Label, serialdfs.CC(u))
	})
	check("SCC", func() error {
		return verify.SamePartition(scc.Run(d, scc.Options{Threads: *threads}).Label, serialdfs.SCC(d))
	})
	check("BiCC", func() error {
		truth := serialdfs.BiCC(u)
		res := bicc.Run(u, bicc.Options{Threads: *threads})
		if err := verify.SameBoolSet(res.IsAP, truth.IsAP, "articulation points"); err != nil {
			return err
		}
		if res.NumBlocks != truth.NumBlocks {
			return fmt.Errorf("block count %d, serial oracle %d", res.NumBlocks, truth.NumBlocks)
		}
		return verify.SameEdgePartition(res.BlockOf, truth.BlockOf)
	})
	check("BgCC", func() error {
		res := bgcc.Run(u, bgcc.Options{Threads: *threads})
		if err := verify.BridgeSetEqual(res.IsBridge, serialdfs.Bridges(u)); err != nil {
			return err
		}
		return verify.SamePartition(res.Label, serialdfs.BgCC(u))
	})

	if failed {
		fmt.Println("verification FAILED")
		os.Exit(1)
	}
	fmt.Println("all decompositions match the serial ground truth")
}

func obtain(path, kind string, scale int, seed uint64, threads int) (*aquila.Directed, error) {
	if path != "" {
		// The shared loader auto-detects .aqg containers (mmap'd), legacy v1
		// binaries, and the text formats, so any aquila-gen output verifies.
		lg, err := cli.LoadDirected(path, threads)
		if err != nil {
			return nil, err
		}
		return lg.Graph, nil
	}
	switch kind {
	case "rmat":
		return gen.RMAT(scale, 16, seed), nil
	case "random":
		n := scale * 1000
		return gen.Random(n, 16*n, seed), nil
	case "social":
		return gen.Social(gen.SocialConfig{
			GiantVertices: scale * 1000, GiantAvgDeg: 6,
			SmallComps: scale * 40, SmallMaxSize: 30,
			Isolated: scale * 20, MutualFrac: 0.4, Seed: seed,
		}), nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -gen {rmat,random,social}")
	}
}

// Command aquila-bench regenerates the paper's evaluation tables and figures
// (Table 1, Table 2, Figures 6, 8, 10, 11, 12, 13, 14) on the synthetic
// stand-in workload suite.
//
// Usage:
//
//	aquila-bench -exp table2                 # one experiment
//	aquila-bench -exp all -scale 0.5         # everything, smaller workloads
//	aquila-bench -exp table2 -algs CC,SCC    # restrict Table 2 sections
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aquila/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig6, fig8, fig10, fig11, fig12, fig13, fig14, all")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		threads = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		runs    = flag.Int("runs", 3, "timed runs per cell (minimum reported)")
		algs    = flag.String("algs", "", "comma-separated Table 2 sections (CC,SCC,BiCC,BgCC)")
		format  = flag.String("format", "text", "table format: text or csv")
	)
	flag.Parse()

	cfg := &bench.Config{
		Scale:   *scale,
		Threads: *threads,
		Runs:    *runs,
		Out:     os.Stdout,
		CSV:     *format == "csv",
	}
	var algList []string
	if *algs != "" {
		algList = strings.Split(*algs, ",")
	}

	run := func(name string, fn func()) {
		fmt.Printf("\n==================== %s ====================\n", name)
		fn()
	}
	experiments := []struct {
		name string
		fn   func()
	}{
		{"table1", func() { bench.Table1(cfg) }},
		{"table2", func() { bench.Table2(cfg, algList) }},
		{"fig6", func() { bench.Fig6(cfg) }},
		{"fig8", func() { bench.Fig8(cfg) }},
		{"fig10", func() { bench.Fig10(cfg) }},
		{"fig11", func() { bench.Fig11(cfg) }},
		{"fig12", func() { bench.Fig12(cfg) }},
		{"fig13", func() { bench.Fig13(cfg) }},
		{"fig14", func() { bench.Fig14(cfg) }},
	}
	found := false
	for _, e := range experiments {
		if *exp == "all" || *exp == e.name {
			run(e.name, e.fn)
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// Command aquilad serves graph connectivity queries over HTTP: the aquila
// engine wrapped in the concurrent serving layer (epoch snapshots,
// singleflight, admission control) behind a stdlib JSON API.
//
// Usage:
//
//	aquilad -graph edges.txt -listen :8372
//	aquilad -gen rmat -scale 16 -threads 4 -max-inflight 2
//
// Endpoints: /v1/connected?u=&v=, /v1/cc, /v1/scc, /v1/bicc, /v1/bgcc,
// /v1/largest-cc, /v1/aps, /v1/bridges, /v1/histogram, /v1/epoch,
// POST /v1/apply, /metrics. An apply body may carry `"edges"` (insertions)
// and `"deletes"`; the first delete promotes the engine to the fully dynamic
// connectivity structure, after which epochs can shrink. An Aquila-Epoch
// request header pins a read to a retained past epoch; a `timeout` query
// parameter bounds the kernel work; shed requests answer 429 with
// Retry-After. See internal/httpd.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops accepting,
// in-flight requests drain for -grace, then still-running kernels are
// cancelled through the drain context and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aquila"
	"aquila/internal/cli"
	"aquila/internal/gen"
	"aquila/internal/httpd"
)

func main() {
	var (
		listen     = flag.String("listen", ":8372", "address to serve HTTP on")
		graphPath  = flag.String("graph", "", "edge-list file (whitespace-separated 'u v' lines)")
		genKind    = flag.String("gen", "", "generate instead of loading: rmat, random, social")
		scale      = flag.Int("scale", 12, "generator scale (rmat: log2 vertices; others: vertex count /1000)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		threads    = flag.Int("threads", 0, "workers per kernel (0 = GOMAXPROCS)")
		reorder    = flag.String("reorder", "none", "cache-aware vertex reordering: none, degree, bfs")
		noPartial  = flag.Bool("no-partial", false, "disable query transformation (always complete computation)")
		rebuild    = flag.Float64("rebuild-threshold", 0, "delta/base edge ratio forcing a static rebuild (0 = default 0.25, <0 = never)")
		maxInFly   = flag.Int("max-inflight", 0, "concurrent kernel slots (0 = GOMAXPROCS/threads)")
		maxQueue   = flag.Int("max-queue", 0, "admission queue depth (0 = 4*max-inflight, negative = shed immediately)")
		defTimeout = flag.Duration("default-timeout", 10*time.Second, "deadline for requests without a timeout parameter")
		maxTimeout = flag.Duration("max-timeout", 30*time.Second, "clamp on per-request timeout parameters")
		retain     = flag.Int("retain", 8, "past epochs retained for Aquila-Epoch pinned reads")
		grace      = flag.Duration("grace", 15*time.Second, "drain window for in-flight requests on shutdown")
		quiet      = flag.Bool("quiet", false, "suppress per-request access logs")
		ccPolicy   = flag.String("cc-policy", "auto", "CC algorithm matrix cell: auto, pipeline, or sampling+finish (e.g. afforest+uf-async)")
		sccPolicy  = flag.String("scc-policy", "auto", "SCC algorithm matrix cell: auto, coloring, multireach, or fwbw")
		biccPolicy = flag.String("bicc-policy", "auto", "BiCC algorithm matrix cell: auto, constrained, or skeleton")
	)
	flag.Parse()

	lg := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(*listen, *graphPath, *genKind, *scale, *seed, *threads, *reorder,
		*ccPolicy, *sccPolicy, *biccPolicy, *noPartial, *rebuild, *maxInFly, *maxQueue, *defTimeout, *maxTimeout,
		*retain, *grace, *quiet, lg); err != nil {
		fmt.Fprintln(os.Stderr, "aquilad:", err)
		os.Exit(1)
	}
}

func run(listen, graphPath, genKind string, scale int, seed uint64, threads int,
	reorder, ccPolicy, sccPolicy, biccPolicy string, noPartial bool, rebuild float64, maxInFly, maxQueue int,
	defTimeout, maxTimeout time.Duration, retain int, grace time.Duration,
	quiet bool, lg *slog.Logger) error {

	reorderMode, err := parseReorder(reorder)
	if err != nil {
		return err
	}
	if err := aquila.ValidateCCPolicy(ccPolicy); err != nil {
		return err
	}
	if err := aquila.ValidateSCCPolicy(sccPolicy); err != nil {
		return err
	}
	if err := aquila.ValidateBiCCPolicy(biccPolicy); err != nil {
		return err
	}
	g, release, err := obtainGraph(graphPath, genKind, scale, seed, threads)
	if err != nil {
		return err
	}
	lg.Info("graph ready", "vertices", g.NumVertices(), "arcs", g.NumArcs())

	eng := aquila.NewDirectedEngine(g, aquila.Options{
		Threads:          threads,
		Reorder:          reorderMode,
		DisablePartial:   noPartial,
		RebuildThreshold: rebuild,
		CCPolicy:         ccPolicy,
		SCCPolicy:        sccPolicy,
		BiCCPolicy:       biccPolicy,
	})
	srv := aquila.NewServer(eng, aquila.ServerConfig{
		MaxInFlight: maxInFly,
		MaxQueue:    maxQueue,
	})
	cfg := httpd.Config{
		DefaultTimeout: defTimeout,
		MaxTimeout:     maxTimeout,
		RetainEpochs:   retain,
	}
	if !quiet {
		cfg.AccessLog = lg
	}
	front := httpd.New(srv, cfg)

	hs := &http.Server{
		Addr:        listen,
		Handler:     front.Handler(),
		BaseContext: front.BaseContext,
	}

	errc := make(chan error, 1)
	go func() {
		lg.Info("listening", "addr", listen)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		lg.Info("shutting down", "signal", s.String(), "grace", grace)
	}

	// Stop accepting and drain in-flight handlers for the grace window; then
	// cancel the drain context so any kernel still running aborts at its next
	// cancellation checkpoint instead of outliving the process.
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err = hs.Shutdown(ctx)
	front.Close()
	// Every kernel has drained (or been cancelled past its last checkpoint),
	// so nothing references the base graph's CSR slices any more: if the graph
	// aliases an mmap'd .aqg container, unmap it before exiting.
	if rerr := release(); rerr != nil {
		lg.Warn("releasing graph mapping", "err", rerr)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		lg.Warn("grace window expired; cancelled remaining kernels",
			"in_flight", front.InFlight())
		return nil
	}
	lg.Info("drained cleanly")
	return err
}

func parseReorder(s string) (aquila.Reorder, error) {
	switch s {
	case "", "none":
		return aquila.ReorderNone, nil
	case "degree":
		return aquila.ReorderDegree, nil
	case "bfs":
		return aquila.ReorderBFS, nil
	default:
		return aquila.ReorderNone, fmt.Errorf("unknown reorder mode %q (want none, degree, bfs)", s)
	}
}

// obtainGraph mirrors cmd/aquila: load a graph file through the shared
// auto-detecting loader (.aqg containers mmap'd, v1 binaries and text formats
// streamed) or generate a synthetic graph. The returned release func unmaps
// an mmap-backed graph; call it only after every kernel has drained.
func obtainGraph(path, kind string, scale int, seed uint64, threads int) (*aquila.Directed, func() error, error) {
	noop := func() error { return nil }
	if path != "" {
		lg, err := cli.LoadDirected(path, threads)
		if err != nil {
			return nil, nil, err
		}
		return lg.Graph, lg.Release, nil
	}
	switch kind {
	case "rmat":
		return gen.RMAT(scale, 16, seed), noop, nil
	case "random":
		n := scale * 1000
		return gen.Random(n, 16*n, seed), noop, nil
	case "social":
		return gen.Social(gen.SocialConfig{
			GiantVertices: scale * 1000, GiantAvgDeg: 6,
			SmallComps: scale * 40, SmallMaxSize: 6,
			Isolated: scale * 20, MutualFrac: 0.4, Seed: seed,
		}), noop, nil
	case "":
		return nil, nil, fmt.Errorf("need -graph FILE or -gen KIND")
	default:
		return nil, nil, fmt.Errorf("unknown generator %q", kind)
	}
}

// Command aquila answers graph connectivity queries from the command line —
// the paper's framework as a tool: load (or generate) a graph, state a query,
// and Aquila classifies it (complete / largest / small / AP-bridge) and picks
// the computation strategy.
//
// Usage:
//
//	aquila -graph edges.txt -query connected
//	aquila -gen rmat -scale 12 -query num-scc
//	aquila -graph edges.txt -query aps -verbose
//	aquila -graph base.txt -updates stream.txt -batch 1000 -query num-cc
//
// Queries: connected, connected=<u>,<v>, strongly-connected, num-cc,
// num-scc, num-bicc, num-bgcc, largest-cc, largest-scc, in-largest-cc=<v>,
// aps, bridges, histogram, cc-policy, scc-policy, bicc-policy.
//
// -cc-policy selects the connected-components matrix cell, -scc-policy the
// strongly-connected-components cell, and -bicc-policy the biconnected-
// components cell ("auto" picks one adaptively from graph statistics; see
// the README's "Algorithm matrix" section for the cells).
//
// With -updates, the file is replayed as batches of edge insertions (`u v`
// lines) and deletions (`- u v` lines) before the query runs. Insert-only
// scripts go through the incremental connectivity layer; the first batch
// containing a delete promotes the engine to the fully dynamic spanning
// forest. See internal/cli.ReplayUpdates for the script format.
//
// With -serve, updates and queries go through the concurrent serving layer
// instead: every batch publishes a new epoch, every answer comes from a
// pinned snapshot, and the script gains `pin` / `?? u v` directives that
// query a pinned past epoch (see internal/cli.ReplayServed). -timeout sets a
// per-query deadline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"aquila"
	"aquila/internal/cli"
	"aquila/internal/gen"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (whitespace-separated 'u v' lines)")
		genKind    = flag.String("gen", "", "generate instead of loading: rmat, random, social")
		scale      = flag.Int("scale", 12, "generator scale (rmat: log2 vertices; others: vertex count /1000)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		query      = flag.String("query", "num-cc", "query to answer")
		updates    = flag.String("updates", "", "update script replayed as batches before the query (u v inserts, '- u v' deletes)")
		batchSize  = flag.Int("batch", 0, "auto-flush update batches every N ops (0 = explicit separators only)")
		rebuild    = flag.Float64("rebuild-threshold", 0, "delta/base edge ratio forcing a static rebuild (0 = default 0.25, <0 = never)")
		threads    = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		ccPolicy   = flag.String("cc-policy", "auto", "CC algorithm matrix cell: auto, pipeline, or sampling+finish (e.g. afforest+uf-async); see the cc-policy query")
		sccPolicy  = flag.String("scc-policy", "auto", "SCC algorithm matrix cell: auto, coloring, multireach, or fwbw; see the scc-policy query")
		biccPolicy = flag.String("bicc-policy", "auto", "BiCC algorithm matrix cell: auto, constrained, or skeleton; see the bicc-policy query")
		reorder    = flag.String("reorder", "none", "cache-aware vertex reordering: none, degree, bfs")
		noPartial  = flag.Bool("no-partial", false, "disable query transformation (always complete computation)")
		serve      = flag.Bool("serve", false, "route updates and queries through the concurrent serving layer (snapshot isolation, singleflight, admission control)")
		timeout    = flag.Duration("timeout", 0, "per-query deadline in serve mode (0 = none)")
		saveBin    = flag.String("save-bin", "", "write the loaded graph as an .aqg v2 container to this path and continue")
		verbose    = flag.Bool("verbose", false, "print strategy and timing details")
		explain    = flag.Bool("explain", false, "print the query classification and strategy before answering")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the query to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the query) to this file")
	)
	flag.Parse()

	if *explain {
		text, err := cli.Explain(*query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	reorderMode, err := parseReorder(*reorder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}

	if err := aquila.ValidateCCPolicy(*ccPolicy); err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	if err := aquila.ValidateSCCPolicy(*sccPolicy); err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	if err := aquila.ValidateBiCCPolicy(*biccPolicy); err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}

	g, parseDur, buildDur, err := obtainGraph(*graphPath, *genKind, *scale, *seed, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("graph: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())
	}
	if *saveBin != "" {
		if err := saveContainer(g, *saveBin); err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("saved .aqg container to %s\n", *saveBin)
		}
	}
	eng := aquila.NewDirectedEngine(g, aquila.Options{
		Threads:          *threads,
		Reorder:          reorderMode,
		DisablePartial:   *noPartial,
		RebuildThreshold: *rebuild,
		CCPolicy:         *ccPolicy,
		SCCPolicy:        *sccPolicy,
		BiCCPolicy:       *biccPolicy,
	})
	var srv *aquila.Server
	if *serve {
		srv = aquila.NewServer(eng, aquila.ServerConfig{DefaultTimeout: *timeout})
	}
	if *updates != "" {
		f, err := os.Open(*updates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		var transcript string
		if srv != nil {
			transcript, err = cli.ReplayServed(srv, f, *batchSize)
		} else {
			transcript, err = cli.ReplayUpdates(eng, f, *batchSize)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		if transcript != "" {
			fmt.Println(transcript)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	var out string
	if srv != nil {
		out, err = cli.AnswerServed(context.Background(), srv, *query)
	} else {
		out, err = cli.Answer(eng, *query)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	fmt.Println(out)
	if *verbose {
		fmt.Printf("answered in %v\n", elapsed)
		fmt.Printf("phases: parse=%v build=%v query=%v\n", parseDur, buildDur, elapsed)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // flush recently-freed objects so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
	}
}

func parseReorder(s string) (aquila.Reorder, error) {
	switch s {
	case "", "none":
		return aquila.ReorderNone, nil
	case "degree":
		return aquila.ReorderDegree, nil
	case "bfs":
		return aquila.ReorderBFS, nil
	default:
		return aquila.ReorderNone, fmt.Errorf("unknown reorder mode %q (want none, degree, bfs)", s)
	}
}

// saveContainer writes g as an .aqg v2 container, atomically enough for a
// CLI: write to the final path, remove it on error.
func saveContainer(g *aquila.Directed, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := aquila.WriteContainer(f, g); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// obtainGraph loads or generates the input and reports how long the parse
// and CSR-build phases took (generators count as build; parse is then zero).
// File loading goes through cli.LoadDirected, which auto-detects .aqg v2
// containers (mmap'd), legacy v1 binaries, and the text formats by content
// and extension.
func obtainGraph(path, kind string, scale int, seed uint64, threads int) (*aquila.Directed, time.Duration, time.Duration, error) {
	if path != "" {
		lg, err := cli.LoadDirected(path, threads)
		if err != nil {
			return nil, 0, 0, err
		}
		return lg.Graph, lg.ParseDur, lg.BuildDur, nil
	}
	genStart := time.Now()
	var g *aquila.Directed
	switch kind {
	case "rmat":
		g = gen.RMAT(scale, 16, seed)
	case "random":
		n := scale * 1000
		g = gen.Random(n, 16*n, seed)
	case "social":
		g = gen.Social(gen.SocialConfig{
			GiantVertices: scale * 1000, GiantAvgDeg: 6,
			SmallComps: scale * 40, SmallMaxSize: 6,
			Isolated: scale * 20, MutualFrac: 0.4, Seed: seed,
		})
	case "":
		return nil, 0, 0, fmt.Errorf("need -graph FILE or -gen KIND")
	default:
		return nil, 0, 0, fmt.Errorf("unknown generator %q", kind)
	}
	return g, 0, time.Since(genStart), nil
}

// Command aquila answers graph connectivity queries from the command line —
// the paper's framework as a tool: load (or generate) a graph, state a query,
// and Aquila classifies it (complete / largest / small / AP-bridge) and picks
// the computation strategy.
//
// Usage:
//
//	aquila -graph edges.txt -query connected
//	aquila -gen rmat -scale 12 -query num-scc
//	aquila -graph edges.txt -query aps -verbose
//	aquila -graph base.txt -updates stream.txt -batch 1000 -query num-cc
//
// Queries: connected, connected=<u>,<v>, strongly-connected, num-cc,
// num-scc, num-bicc, num-bgcc, largest-cc, largest-scc, in-largest-cc=<v>,
// aps, bridges, histogram.
//
// With -updates, the file is replayed as batches of edge insertions through
// the incremental connectivity layer before the query runs; see
// internal/cli.ReplayUpdates for the script format.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"aquila"
	"aquila/internal/cli"
	"aquila/internal/gen"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (whitespace-separated 'u v' lines)")
		genKind    = flag.String("gen", "", "generate instead of loading: rmat, random, social")
		scale      = flag.Int("scale", 12, "generator scale (rmat: log2 vertices; others: vertex count /1000)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		query      = flag.String("query", "num-cc", "query to answer")
		updates    = flag.String("updates", "", "update script replayed as incremental batches before the query")
		batchSize  = flag.Int("batch", 0, "auto-flush update batches every N edges (0 = explicit separators only)")
		rebuild    = flag.Float64("rebuild-threshold", 0, "delta/base edge ratio forcing a static rebuild (0 = default 0.25, <0 = never)")
		threads    = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		noPartial  = flag.Bool("no-partial", false, "disable query transformation (always complete computation)")
		verbose    = flag.Bool("verbose", false, "print strategy and timing details")
		explain    = flag.Bool("explain", false, "print the query classification and strategy before answering")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the query to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the query) to this file")
	)
	flag.Parse()

	if *explain {
		text, err := cli.Explain(*query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	g, err := obtainGraph(*graphPath, *genKind, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("graph: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())
	}
	eng := aquila.NewDirectedEngine(g, aquila.Options{
		Threads:          *threads,
		DisablePartial:   *noPartial,
		RebuildThreshold: *rebuild,
	})
	if *updates != "" {
		f, err := os.Open(*updates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		transcript, err := cli.ReplayUpdates(eng, f, *batchSize)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		if transcript != "" {
			fmt.Println(transcript)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	out, err := cli.Answer(eng, *query)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquila:", err)
		os.Exit(1)
	}
	fmt.Println(out)
	if *verbose {
		fmt.Printf("answered in %v\n", elapsed)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // flush recently-freed objects so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aquila:", err)
			os.Exit(1)
		}
	}
}

func obtainGraph(path, kind string, scale int, seed uint64) (*aquila.Directed, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r, err := aquila.MaybeGunzip(f)
		if err != nil {
			return nil, err
		}
		base := strings.TrimSuffix(path, ".gz")
		switch {
		case strings.HasSuffix(base, ".mtx"):
			return aquila.LoadMatrixMarket(r)
		case strings.HasSuffix(base, ".metis"), strings.HasSuffix(base, ".graph"):
			u, err := aquila.LoadMETIS(r)
			if err != nil {
				return nil, err
			}
			// The query engine over a METIS file is undirected; rebuild as a
			// symmetric directed graph so every query class is available.
			var edges []aquila.Edge
			for v := 0; v < u.NumVertices(); v++ {
				for _, w := range u.Neighbors(aquila.V(v)) {
					edges = append(edges, aquila.Edge{U: aquila.V(v), V: w})
				}
			}
			return aquila.NewDirected(u.NumVertices(), edges), nil
		default:
			return aquila.LoadEdgeList(r)
		}
	}
	switch kind {
	case "rmat":
		return gen.RMAT(scale, 16, seed), nil
	case "random":
		n := scale * 1000
		return gen.Random(n, 16*n, seed), nil
	case "social":
		return gen.Social(gen.SocialConfig{
			GiantVertices: scale * 1000, GiantAvgDeg: 6,
			SmallComps: scale * 40, SmallMaxSize: 6,
			Isolated: scale * 20, MutualFrac: 0.4, Seed: seed,
		}), nil
	case "":
		return nil, fmt.Errorf("need -graph FILE or -gen KIND")
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

// Command bench2json converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line:
//
//	go test -bench 'BFS|Pool' -benchmem -run '^$' ./... | bench2json > bench.json
//
// Each object carries the benchmark name (with the -N GOMAXPROCS suffix
// stripped), iteration count, ns/op, and — when -benchmem was set — B/op and
// allocs/op. Non-benchmark lines are ignored, so the full `go test` output can
// be piped straight through.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result mirrors one benchmark output line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom testing.B ReportMetric units (e.g. "edges/s",
	// "MB/s") keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	results := []result{} // encode as [] (not null) when no benchmarks matched
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine decodes a line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  64 B/op	   2 allocs/op
//
// reporting ok=false for anything else.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return result{}, false
			}
			seenNs = true
		case "B/op":
			if b, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &b
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &a
			}
		default:
			// Custom b.ReportMetric units (edges/s, MB/s, ...): keep any
			// parsable value-unit pair so throughput metrics survive the
			// conversion.
			if !strings.Contains(unit, "/") {
				continue
			}
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, seenNs
}

package aquila

import (
	"math"
	"reflect"
	"testing"

	"aquila/internal/gen"
	"aquila/internal/graph"
	"aquila/internal/verify"
)

// reorderTestGraphs is the graph-class sweep the answer-preservation property
// runs over: skewed (R-MAT), uniform, and many-small-components (social).
func reorderTestGraphs(tb testing.TB) map[string]*Directed {
	tb.Helper()
	return map[string]*Directed{
		"rmat":   gen.RMAT(9, 8, 1),
		"random": gen.Random(2000, 8000, 2),
		"social": gen.Social(gen.SocialConfig{
			GiantVertices: 1500, GiantAvgDeg: 5,
			SmallComps: 80, SmallMaxSize: 6,
			Isolated: 40, MutualFrac: 0.4, Seed: 3,
		}),
	}
}

var reorderModes = map[string]Reorder{"degree": ReorderDegree, "bfs": ReorderBFS}

// TestReorderAnswerPreserving is the tentpole property test: for every graph
// class and every Reorder mode, all five XCC decompositions of the reordered
// engine are partition-identical to the unreordered run, and the AP/bridge/
// score results map back exactly. Reordering must be observationally
// invisible.
func TestReorderAnswerPreserving(t *testing.T) {
	for gname, g := range reorderTestGraphs(t) {
		base := NewDirectedEngine(g, Options{})
		baseCC := base.CC()
		baseSCC, err := base.SCC()
		if err != nil {
			t.Fatal(err)
		}
		baseBiCC := base.BiCC()
		baseBgCC := base.BgCC()
		baseAPs := base.ArticulationPoints()
		baseBridges := base.Bridges()
		baseHist := base.CCSizeHistogram()
		baseCore := base.Coreness()
		baseBtw := base.BetweennessCentrality()
		for mname, mode := range reorderModes {
			t.Run(gname+"/"+mname, func(t *testing.T) {
				e := NewDirectedEngine(g, Options{Reorder: mode})

				cc := e.CC()
				if err := verify.SamePartition(baseCC.Label, cc.Label); err != nil {
					t.Fatalf("CC: %v", err)
				}
				if cc.NumComponents != baseCC.NumComponents || cc.LargestSize != baseCC.LargestSize {
					t.Fatalf("CC summary: want (%d,%d), got (%d,%d)",
						baseCC.NumComponents, baseCC.LargestSize, cc.NumComponents, cc.LargestSize)
				}
				// Remapped labels must stay self-representative: each label
				// names a member vertex of its own component.
				for v, l := range cc.Label {
					if cc.Label[l] != l {
						t.Fatalf("label %d of vertex %d is not self-representative", l, v)
					}
				}

				scc, err := e.SCC()
				if err != nil {
					t.Fatal(err)
				}
				if err := verify.SamePartition(baseSCC.Label, scc.Label); err != nil {
					t.Fatalf("SCC: %v", err)
				}
				if scc.NumComponents != baseSCC.NumComponents || scc.LargestSize != baseSCC.LargestSize {
					t.Fatal("SCC summary diverged")
				}

				bicc := e.BiCC()
				if err := verify.SameEdgePartition(baseBiCC.BlockOf, bicc.BlockOf); err != nil {
					t.Fatalf("BiCC blocks: %v", err)
				}
				if err := verify.SameBoolSet(bicc.IsAP, baseBiCC.IsAP, "AP"); err != nil {
					t.Fatalf("BiCC APs: %v", err)
				}
				if bicc.NumBlocks != baseBiCC.NumBlocks {
					t.Fatal("BiCC block count diverged")
				}

				bgcc := e.BgCC()
				if err := verify.BridgeSetEqual(bgcc.IsBridge, baseBgCC.IsBridge); err != nil {
					t.Fatalf("BgCC bridges: %v", err)
				}
				if err := verify.SamePartition(baseBgCC.Label, bgcc.Label); err != nil {
					t.Fatalf("BgCC labels: %v", err)
				}
				if bgcc.NumComponents != baseBgCC.NumComponents || bgcc.LargestSize != baseBgCC.LargestSize {
					t.Fatal("BgCC summary diverged")
				}

				if aps := e.ArticulationPoints(); !reflect.DeepEqual(aps, baseAPs) {
					t.Fatalf("AP set: want %d entries, got %d", len(baseAPs), len(aps))
				}
				if br := e.Bridges(); !reflect.DeepEqual(br, baseBridges) {
					t.Fatalf("bridge set: want %d entries, got %d", len(baseBridges), len(br))
				}
				if hist := e.CCSizeHistogram(); !reflect.DeepEqual(hist, baseHist) {
					t.Fatal("CC size histogram diverged")
				}

				if core := e.Coreness(); !reflect.DeepEqual(core, baseCore) {
					t.Fatal("coreness diverged")
				}
				btw := e.BetweennessCentrality()
				for v := range btw {
					if math.Abs(btw[v]-baseBtw[v]) > 1e-6*(1+math.Abs(baseBtw[v])) {
						t.Fatalf("betweenness of %d: want %g, got %g", v, baseBtw[v], btw[v])
					}
				}

				// Pair queries and partial paths answer in original ids.
				if e.IsConnected() != base.IsConnected() {
					t.Fatal("IsConnected diverged")
				}
				if e.CountCC() != base.CountCC() {
					t.Fatal("CountCC diverged")
				}
				lcc, baseLCC := e.LargestCC(), base.LargestCC()
				if lcc.Size != baseLCC.Size {
					t.Fatalf("LargestCC size: want %d, got %d", baseLCC.Size, lcc.Size)
				}
				if !lcc.Contains(lcc.Pivot) {
					t.Fatal("LargestCC pivot not in its own component")
				}
				lscc, err := e.LargestSCC()
				if err != nil {
					t.Fatal(err)
				}
				baseLSCC, _ := base.LargestSCC()
				if lscc.Size != baseLSCC.Size {
					t.Fatal("LargestSCC size diverged")
				}
				if !lscc.Contains(lscc.Pivot) {
					t.Fatal("LargestSCC pivot not in its own component")
				}
				rng := gen.NewRNG(7)
				n := g.NumVertices()
				for i := 0; i < 500; i++ {
					u, v := V(rng.Intn(n)), V(rng.Intn(n))
					if e.Connected(u, v) != (baseCC.Label[u] == baseCC.Label[v]) {
						t.Fatalf("Connected(%d,%d) diverged", u, v)
					}
					// Membership must agree with the engine's own closure (the
					// cross-engine component can differ only under exact size
					// ties, so that comparison is by size above).
					if e.InLargestCC(u) != lcc.Contains(u) {
						t.Fatalf("InLargestCC(%d) inconsistent with LargestCC().Contains", u)
					}
				}

				// The accessors hand back original-id graphs, structurally
				// identical to the input.
				und := e.Undirected()
				bu := base.Undirected()
				if und.NumVertices() != bu.NumVertices() || und.NumEdges() != bu.NumEdges() {
					t.Fatal("Undirected() shape diverged")
				}
				if e.Directed() != g {
					// Before any Apply the engine must return the exact input.
					t.Fatal("Directed() did not return the original graph")
				}
			})
		}
	}
}

// TestReorderUndirectedEngine runs the same property over an undirected
// engine (the other construction path).
func TestReorderUndirectedEngine(t *testing.T) {
	u := graph.Undirect(gen.RMAT(9, 8, 5))
	base := NewEngine(u, Options{})
	baseCC := base.CC()
	baseAPs := base.ArticulationPoints()
	baseBridges := base.Bridges()
	for mname, mode := range reorderModes {
		t.Run(mname, func(t *testing.T) {
			e := NewEngine(u, Options{Reorder: mode})
			if err := verify.SamePartition(baseCC.Label, e.CC().Label); err != nil {
				t.Fatalf("CC: %v", err)
			}
			if !reflect.DeepEqual(e.ArticulationPoints(), baseAPs) {
				t.Fatal("AP set diverged")
			}
			if !reflect.DeepEqual(e.Bridges(), baseBridges) {
				t.Fatal("bridge set diverged")
			}
			if e.Undirected() != u {
				t.Fatal("Undirected() did not return the original graph")
			}
		})
	}
}

// TestReorderApplyPreserving drives the incremental path under reordering:
// identical batches (in original ids) against a reordered and an unreordered
// engine must stay answer-identical through merges, materialization, and a
// threshold-triggered rebuild.
func TestReorderApplyPreserving(t *testing.T) {
	g := gen.Social(gen.SocialConfig{
		GiantVertices: 1200, GiantAvgDeg: 4,
		SmallComps: 100, SmallMaxSize: 5,
		Isolated: 60, MutualFrac: 0.3, Seed: 11,
	})
	n := g.NumVertices()
	for mname, mode := range reorderModes {
		t.Run(mname, func(t *testing.T) {
			base := NewDirectedEngine(g, Options{RebuildThreshold: 0.05})
			e := NewDirectedEngine(g, Options{Reorder: mode, RebuildThreshold: 0.05})
			rng := gen.NewRNG(42)
			for round := 0; round < 8; round++ {
				batch := make([]Edge, 0, 64)
				for i := 0; i < 64; i++ {
					batch = append(batch, Edge{U: V(rng.Intn(n)), V: V(rng.Intn(n))})
				}
				br, err := base.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				er, err := e.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				if br.NewEdges != er.NewEdges || br.NewArcs != er.NewArcs ||
					br.Merged != er.Merged || br.Components != er.Components {
					t.Fatalf("round %d: ApplyResult diverged: base=%+v reorder=%+v", round, br, er)
				}
				for i := 0; i < 200; i++ {
					u, v := V(rng.Intn(n)), V(rng.Intn(n))
					if base.Connected(u, v) != e.Connected(u, v) {
						t.Fatalf("round %d: Connected(%d,%d) diverged", round, u, v)
					}
				}
				if err := verify.SamePartition(base.CC().Label, e.CC().Label); err != nil {
					t.Fatalf("round %d: CC: %v", round, err)
				}
			}
			// Force materialization on both sides and compare the rebuilt
			// original-id graphs byte for byte: the reordered engine's
			// round-trip (compute ids -> inverse permutation) must agree with
			// the directly-maintained graph.
			bu, eu := base.Undirected(), e.Undirected()
			bo, ba := bu.CSR()
			eo, ea := eu.CSR()
			if !reflect.DeepEqual(bo, eo) || !reflect.DeepEqual(ba, ea) {
				t.Fatal("materialized Undirected() CSR diverged")
			}
			bd, ed := base.Directed(), e.Directed()
			boo, boa := bd.OutCSR()
			eoo, eoa := ed.OutCSR()
			if !reflect.DeepEqual(boo, eoo) || !reflect.DeepEqual(boa, eoa) {
				t.Fatal("materialized Directed() CSR diverged")
			}
			if err := verify.SameEdgePartition(base.BiCC().BlockOf, e.BiCC().BlockOf); err != nil {
				t.Fatalf("post-apply BiCC: %v", err)
			}
			if !reflect.DeepEqual(base.Bridges(), e.Bridges()) {
				t.Fatal("post-apply bridge set diverged")
			}
			sb, _ := base.SCC()
			se, err := e.SCC()
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.SamePartition(sb.Label, se.Label); err != nil {
				t.Fatalf("post-apply SCC: %v", err)
			}
		})
	}
}

// TestReorderPermutationInvariants sanity-checks the orders themselves:
// valid bijections, degree order sorted by descending degree, BFS order
// clustering each component contiguously.
func TestReorderPermutationInvariants(t *testing.T) {
	u := graph.Undirect(gen.RMAT(8, 8, 9))
	n := u.NumVertices()
	for name, p := range map[string]*graph.Permutation{
		"degree": graph.DegreeOrder(u, 0),
		"bfs":    graph.BFSOrder(u, 0),
	} {
		if len(p.Perm) != n || len(p.Inv) != n {
			t.Fatalf("%s: bad length", name)
		}
		for v := 0; v < n; v++ {
			if int(p.Inv[p.Perm[v]]) != v {
				t.Fatalf("%s: not a bijection at %d", name, v)
			}
		}
	}
	d := graph.DegreeOrder(u, 0)
	for i := 1; i < n; i++ {
		if u.Degree(d.Inv[i]) > u.Degree(d.Inv[i-1]) {
			t.Fatalf("degree order not descending at rank %d", i)
		}
	}
	// Rank 0 of both orders is a max-degree vertex.
	b := graph.BFSOrder(u, 0)
	if u.Degree(b.Inv[0]) != u.Degree(u.MaxDegreeVertex()) {
		t.Fatal("BFS order does not start at a max-degree hub")
	}
}

// TestEngineLargestCCContainsOutOfRange mirrors the snapshot-layer
// regression on the Engine path: every LargestCC/LargestSCC contains closure
// (partial traversal, permuted partial, census fallback) must answer false
// for out-of-range vertices instead of indexing the permutation or the label
// array past its end.
func TestEngineLargestCCContainsOutOfRange(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}}
	const n = 10
	for _, mode := range []Reorder{ReorderNone, ReorderDegree} {
		for _, disablePartial := range []bool{false, true} {
			e := NewEngine(NewUndirected(n, edges),
				Options{Threads: 2, Reorder: mode, DisablePartial: disablePartial})
			res := e.LargestCC()
			if res.Size != 8 || !res.Contains(0) || res.Contains(9) {
				t.Fatalf("reorder=%v partial=%v: in-range answers wrong", mode, !disablePartial)
			}
			for _, v := range []V{n, 1 << 20, graph.NoVertex} {
				if res.Contains(v) {
					t.Fatalf("reorder=%v partial=%v: Contains(%d) = true out of range", mode, !disablePartial, v)
				}
			}
			if e.InLargestCC(graph.NoVertex) {
				t.Fatalf("reorder=%v partial=%v: InLargestCC out of range = true", mode, !disablePartial)
			}
		}
		// Directed twin: LargestSCC's forward/backward closure.
		d := NewDirectedEngine(NewDirected(n, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 4}}),
			Options{Threads: 2, Reorder: mode})
		sres, err := d.LargestSCC()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []V{n, graph.NoVertex} {
			if sres.Contains(v) {
				t.Fatalf("reorder=%v: LargestSCC.Contains(%d) = true out of range", mode, v)
			}
		}
	}
}

package aquila

import (
	"aquila/internal/bfs"
	"aquila/internal/bicc"
	"aquila/internal/cc"
	"aquila/internal/scc"
)

// Traversal selects how much of the enhanced-BFS machinery is used for the
// large-component traversals.
type Traversal int

const (
	// TraversalEnhanced (default) uses multi-pivot sampling and the relaxed
	// synchronization schedule (§5.3).
	TraversalEnhanced Traversal = iota
	// TraversalDirOpt uses direction-optimizing BFS without the enhancements.
	TraversalDirOpt
	// TraversalPlain uses plain synchronous top-down parallel BFS.
	TraversalPlain
)

func (t Traversal) mode() bfs.Mode {
	switch t {
	case TraversalPlain:
		return bfs.ModePlain
	case TraversalDirOpt:
		return bfs.ModeDirOpt
	default:
		return bfs.ModeEnhanced
	}
}

// Reorder selects the cache-aware vertex relabeling applied when an Engine is
// built. The engine computes on the relabeled CSR (hubs and traversal
// neighborhoods packed onto adjacent rows) and transparently maps every
// result — labels, AP/bridge sets, Contains closures, pair queries — back to
// the caller's original vertex ids, so reordering is observationally
// invisible apart from speed.
type Reorder int

const (
	// ReorderNone computes on the input graph as-is (default).
	ReorderNone Reorder = iota
	// ReorderDegree relabels vertices in degree-descending order, clustering
	// hubs at the front of the CSR (frequent-first layout).
	ReorderDegree
	// ReorderBFS relabels vertices in a hub-seeded breadth-first order, so
	// vertices a traversal touches together sit on nearby CSR rows.
	ReorderBFS
)

// Options configures an Engine. The zero value uses all techniques with
// GOMAXPROCS workers.
type Options struct {
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// Traversal selects the large-task BFS flavour.
	Traversal Traversal
	// Reorder selects the cache-aware vertex relabeling (default: none).
	Reorder Reorder
	// DisableTrim turns off trivial-pattern trimming (Fig. 7).
	DisableTrim bool
	// DisableSPO turns off single-parent-only pruning (Fig. 5) in BiCC/BgCC.
	DisableSPO bool
	// DisableAdaptive turns off the large/small task split: everything is
	// computed with the data-parallel method.
	DisableAdaptive bool
	// DisablePartial turns off query transformation: every query is answered
	// from the complete decomposition (the strategy of conventional
	// frameworks the paper compares against in Figs. 12–14).
	DisablePartial bool
	// CCPolicy selects the connected-components matrix cell. "" or "auto"
	// (the default) picks the cell adaptively from cheap graph statistics at
	// solve time; any other value is a cc.ParsePolicy spec ("sampling+finish",
	// e.g. "afforest+uf-async", or "pipeline" for the classic trim+BFS+LP
	// cell). Every cell returns the same canonical labeling, so the choice is
	// performance-only. An unparseable spec degrades to "auto" (NewEngine
	// cannot error); front-ends validate with ValidateCCPolicy first.
	CCPolicy string
	// SCCPolicy selects the strongly-connected-components matrix cell. ""
	// or "auto" (the default) picks the cell adaptively from the directed-
	// graph probe (cheap statistics plus a bounded post-trim liveness scan)
	// at solve time; any other value is an scc.ParsePolicy spec ("coloring",
	// "multireach", "fwbw", or the alias "pipeline" for the classic paper
	// cell). Every cell returns the same canonical labeling, so the choice
	// is performance-only; only directed engines consult it. An unparseable
	// spec degrades to "auto" (NewEngine cannot error); front-ends validate
	// with ValidateSCCPolicy first.
	SCCPolicy string
	// BiCCPolicy selects the biconnected-components matrix cell. "" or
	// "auto" (the default) picks the cell adaptively from the undirected
	// probe (cheap statistics plus a bounded BFS-depth sample) at solve
	// time; any other value is a bicc.ParsePolicy spec ("constrained",
	// "skeleton", or the alias "pipeline" for the classic paper cell).
	// Every cell returns the same canonical AP set and block partition, so
	// the choice is performance-only. An unparseable spec degrades to
	// "auto" (NewEngine cannot error); front-ends validate with
	// ValidateBiCCPolicy first.
	BiCCPolicy string
	// RebuildThreshold controls when Apply falls back to a full static
	// recomputation: once the undirected edges inserted since the last
	// rebuild exceed RebuildThreshold × the edge count at that rebuild,
	// Apply materializes the graph and reruns the static CC pipeline,
	// reseeding the incremental union-find in a freshly flattened state.
	// In dynamic mode (after the first delete op) the budget counts inserts
	// plus deletes, and the rebuild re-canonicalizes the cached labels
	// through the static pipeline while the spanning forest stays
	// authoritative. 0 means the default (0.25); negative values disable
	// automatic rebuilds, growing the pending delta without bound.
	RebuildThreshold float64
	// DisableDynamic pins the engine to the monotone insert-only incremental
	// layer: batches containing delete operations are rejected with
	// ErrDeletesDisabled instead of promoting to the dynamic spanning
	// forest. Deployments that depend on monotone connectivity (a Connected
	// answer never later revoked) set this as a guard rail.
	DisableDynamic bool
}

// ValidateCCPolicy reports whether s is an acceptable Options.CCPolicy value:
// "", "auto", or a parseable matrix-cell spec. Front-ends call this to reject
// a bad -cc-policy before building an engine.
func ValidateCCPolicy(s string) error {
	if s == "" || s == "auto" {
		return nil
	}
	_, err := cc.ParsePolicy(s)
	return err
}

// ValidateSCCPolicy reports whether s is an acceptable Options.SCCPolicy
// value: "", "auto", or a parseable matrix-cell spec. Front-ends call this
// to reject a bad -scc-policy before building an engine.
func ValidateSCCPolicy(s string) error {
	if s == "" || s == "auto" {
		return nil
	}
	_, err := scc.ParsePolicy(s)
	return err
}

// ValidateBiCCPolicy reports whether s is an acceptable Options.BiCCPolicy
// value: "", "auto", or a parseable matrix-cell spec. Front-ends call this
// to reject a bad -bicc-policy before building an engine.
func ValidateBiCCPolicy(s string) error {
	if s == "" || s == "auto" {
		return nil
	}
	_, err := bicc.ParsePolicy(s)
	return err
}

// defaultRebuildThreshold is the delta fraction at which patching the
// union-find stops paying off versus one fresh decomposition.
const defaultRebuildThreshold = 0.25

// rebuildThreshold resolves the knob: the returned value is the effective
// fraction, with 0 meaning "rebuilds disabled".
func (o Options) rebuildThreshold() float64 {
	switch {
	case o.RebuildThreshold == 0:
		return defaultRebuildThreshold
	case o.RebuildThreshold < 0:
		return 0
	default:
		return o.RebuildThreshold
	}
}
